package registry_test

import (
	"context"
	"errors"
	"testing"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// newEco builds a one-TLD ecosystem with an incentive on .nl.
func newEco(t *testing.T, tlds ...string) *dnstest.Ecosystem {
	t.Helper()
	if len(tlds) == 0 {
		tlds = []string{"com", "nl"}
	}
	e, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{
		TLDs: tlds,
		Incentives: map[string]*registry.Incentive{
			"nl": {DiscountPerYear: 0.28, MaxFailures: 14, WindowDays: 180},
		},
		CDSTLDs: map[string]bool{"com": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegisterAndDelegation(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"]
	reg.Accredit("acme")
	if err := reg.Register("acme", "example.com", []string{"ns1.host.net", "NS2.Host.NET", "ns1.host.net"}); err != nil {
		t.Fatal(err)
	}
	r, ok := reg.Registration("example.com")
	if !ok {
		t.Fatal("registration missing")
	}
	if len(r.NS) != 2 {
		t.Errorf("NS not deduplicated/canonicalized: %v", r.NS)
	}
	if r.Expires-r.Created != 365 {
		t.Errorf("period: %d days", r.Expires-r.Created)
	}
	// Delegation is visible in the zone.
	ns := reg.Zone().Lookup("example.com", dnswire.TypeNS)
	if len(ns) != 2 {
		t.Errorf("zone NS count %d", len(ns))
	}
	if reg.DomainCount() != 1 || len(reg.Domains()) != 1 {
		t.Error("Domains bookkeeping")
	}
}

func TestRegistryAuth(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"]
	if err := reg.Register("stranger", "x.com", []string{"ns1.x.net"}); !errors.Is(err, registry.ErrNotAccredited) {
		t.Errorf("unaccredited register: %v", err)
	}
	reg.Accredit("acme")
	reg.Accredit("rival")
	if err := reg.Register("acme", "x.com", []string{"ns1.x.net"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("acme", "x.com", []string{"ns1.x.net"}); !errors.Is(err, registry.ErrAlreadyExists) {
		t.Errorf("duplicate register: %v", err)
	}
	if err := reg.SetNS("rival", "x.com", []string{"ns1.evil.net"}); !errors.Is(err, registry.ErrWrongRegistrar) {
		t.Errorf("cross-registrar SetNS: %v", err)
	}
	if err := reg.Register("acme", "x.org", []string{"ns1.x.net"}); !errors.Is(err, registry.ErrOutsideTLD) {
		t.Errorf("out-of-TLD register: %v", err)
	}
	if err := reg.Register("acme", "a.b.com", []string{"ns1.x.net"}); !errors.Is(err, registry.ErrOutsideTLD) {
		t.Errorf("third-level register: %v", err)
	}
	if err := reg.SetNS("acme", "x.com", nil); !errors.Is(err, registry.ErrEmptyNameservers) {
		t.Errorf("empty NS: %v", err)
	}
}

func TestDSLifecycle(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"]
	reg.Accredit("acme")
	if err := reg.Register("acme", "signed.com", []string{"ns1.op.net"}); err != nil {
		t.Fatal(err)
	}
	ds := &dnswire.DS{KeyTag: 1, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if err := reg.SetDS("acme", "signed.com", []*dnswire.DS{ds}); err != nil {
		t.Fatal(err)
	}
	// DS RRset present and signed in the TLD zone.
	z := reg.Zone()
	if len(z.Lookup("signed.com", dnswire.TypeDS)) != 1 {
		t.Fatal("DS not in zone")
	}
	sigs := z.Lookup("signed.com", dnswire.TypeRRSIG)
	found := false
	for _, rr := range sigs {
		if rr.Data.(*dnswire.RRSIG).TypeCovered == dnswire.TypeDS {
			found = true
		}
	}
	if !found {
		t.Error("DS RRset unsigned")
	}
	if err := reg.DeleteDS("acme", "signed.com"); err != nil {
		t.Fatal(err)
	}
	if len(z.Lookup("signed.com", dnswire.TypeDS)) != 0 {
		t.Error("DS not removed from zone")
	}
	if len(z.Lookup("signed.com", dnswire.TypeNS)) == 0 {
		t.Error("delegation lost on DS removal")
	}
}

func TestTransferAndRenew(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"]
	reg.Accredit("a")
	reg.Accredit("b")
	if err := reg.Register("a", "move.com", []string{"ns1.op.net"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.TransferRegistrar("a", "b", "move.com"); err != nil {
		t.Fatal(err)
	}
	r, _ := reg.Registration("move.com")
	if r.RegistrarID != "b" {
		t.Errorf("registrar after transfer: %s", r.RegistrarID)
	}
	before := r.Expires
	if err := reg.Renew("b", "move.com"); err != nil {
		t.Fatal(err)
	}
	r, _ = reg.Registration("move.com")
	if r.Expires != before+365 {
		t.Errorf("renewal: %d -> %d", before, r.Expires)
	}
	if err := reg.TransferRegistrar("b", "ghost", "move.com"); !errors.Is(err, registry.ErrNotAccredited) {
		t.Errorf("transfer to unaccredited: %v", err)
	}
}

// addSignedDomain wires a real signed child zone on the ecosystem network
// and registers it with a correct (or garbage) DS.
func addSignedDomain(t *testing.T, e *dnstest.Ecosystem, reg *registry.Registry, registrarID, domain, nsHost string, goodDS bool) *zone.Signer {
	t.Helper()
	z := zone.New(domain)
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.SOA{
		MName: nsHost, RName: "hostmaster." + domain,
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.NS{Host: nsHost}))
	signer, err := zone.NewSigner(dnswire.AlgED25519, e.Clock.Day().Time())
	if err != nil {
		t.Fatal(err)
	}
	signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	if err := signer.Sign(z); err != nil {
		t.Fatal(err)
	}
	srv := dnstestServer(e, nsHost)
	srv.AddZone(z)
	if err := reg.Register(registrarID, domain, []string{nsHost}); err != nil {
		t.Fatal(err)
	}
	var ds []*dnswire.DS
	if goodDS {
		ds, err = signer.DSRecords(domain, dnswire.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		ds = []*dnswire.DS{{KeyTag: 9, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}}
	}
	if err := reg.SetDS(registrarID, domain, ds); err != nil {
		t.Fatal(err)
	}
	return signer
}

// dnstestServer fetches or creates an authoritative server at nsHost.
func dnstestServer(e *dnstest.Ecosystem, nsHost string) *dnsserver.Authoritative {
	if h := e.Net.Lookup(nsHost); h != nil {
		return h.(*dnsserver.Authoritative)
	}
	srv := dnsserver.NewAuthoritative()
	e.Net.Register(nsHost, srv)
	return srv
}

func TestHealthCheckIncentives(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["nl"]
	reg.Accredit("dutchreg")
	reg.Accredit("sloppyreg")
	addSignedDomain(t, e, reg, "dutchreg", "good.nl", "ns1.dutchreg.nl", true)
	addSignedDomain(t, e, reg, "dutchreg", "good2.nl", "ns1.dutchreg.nl", true)
	addSignedDomain(t, e, reg, "sloppyreg", "bad.nl", "ns1.sloppyreg.nl", false)

	day := e.Clock.Day()
	report, err := reg.HealthCheck(context.Background(), e.Net, day)
	if err != nil {
		t.Fatal(err)
	}
	if report.Checked != 3 || report.Valid != 2 {
		t.Fatalf("checked=%d valid=%d", report.Checked, report.Valid)
	}
	if report.FailuresByRegistrar["sloppyreg"] != 1 {
		t.Errorf("failures: %v", report.FailuresByRegistrar)
	}
	// Discount accrues only for the compliant registrar's valid domains.
	wantDaily := 2 * 0.28 / 365
	if got := report.DiscountsAccrued["dutchreg"]; got < wantDaily*0.99 || got > wantDaily*1.01 {
		t.Errorf("discount %v, want ~%v", got, wantDaily)
	}
	if _, ok := report.DiscountsAccrued["sloppyreg"]; ok {
		t.Error("broken domain earned a discount")
	}
	total := reg.Discounts()["dutchreg"]
	if total <= 0 {
		t.Error("discount ledger empty")
	}
	// A registry without an incentive program refuses the audit.
	if _, err := e.Registries["com"].HealthCheck(context.Background(), e.Net, day); err == nil {
		t.Error("incentive-less registry ran a health check")
	}
}

func TestHealthCheckFailureThreshold(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["nl"]
	reg.Accredit("flaky")
	addSignedDomain(t, e, reg, "flaky", "good.nl", "ns1.flaky.nl", true)
	addSignedDomain(t, e, reg, "flaky", "bad.nl", "ns2.flaky.nl", false)

	// 15 daily audits: each adds one failure; after exceeding MaxFailures
	// (14) within the window, even the valid domain stops earning.
	var last *registry.HealthReport
	for i := 0; i < 16; i++ {
		day := e.Clock.Advance(1)
		var err error
		last, err = reg.HealthCheck(context.Background(), e.Net, day)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := last.DiscountsAccrued["flaky"]; ok {
		t.Errorf("discount still accruing after %d failures: %+v", 16, last.DiscountsAccrued)
	}
}

func TestCDSScan(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"] // CDS-enabled in newEco
	reg.Accredit("acme")
	signer := addSignedDomain(t, e, reg, "acme", "roll.com", "ns1.roll.net", true)

	// The child publishes a CDS for a NEW key (simulating a rollover): the
	// new KSK signs the zone, the old DS still references the old key.
	z := dnstestServer(e, "ns1.roll.net").Zone("roll.com")
	if z == nil {
		t.Fatal("child zone missing")
	}
	newSigner, err := zone.NewSigner(dnswire.AlgED25519, e.Clock.Day().Time())
	if err != nil {
		t.Fatal(err)
	}
	newSigner.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	// Keep the old key in the DNSKEY RRset and sign the set with the OLD
	// key (still trusted via the current DS), publishing CDS for the new.
	z.MustAdd(newSigner.KSK.RR("roll.com", 3600))
	if err := signer.SignSet(z, "roll.com", dnswire.TypeDNSKEY); err != nil {
		t.Fatal(err)
	}
	ds, err := dnssec.ComputeDS("roll.com", newSigner.KSK.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	z.MustAdd(dnswire.NewRR("roll.com", 3600, &dnswire.CDS{DS: *ds}))
	if err := signer.SignSet(z, "roll.com", dnswire.TypeCDS); err != nil {
		t.Fatal(err)
	}

	report, err := reg.ScanCDS(context.Background(), e.Net, e.Clock.Day(), false)
	if err != nil {
		t.Fatal(err)
	}
	if report.Updated != 1 || report.Rejected != 0 {
		t.Fatalf("report: %+v", report)
	}
	r, _ := reg.Registration("roll.com")
	if len(r.DS) != 1 || !dnssec.MatchDS("roll.com", r.DS[0], newSigner.KSK.DNSKEY()) {
		t.Error("DS not rolled to the new key")
	}
	// A registry without CDS support refuses.
	if _, err := e.Registries["nl"].ScanCDS(context.Background(), e.Net, e.Clock.Day(), false); err == nil {
		t.Error("CDS scan ran on non-CDS registry")
	}
}

func TestCDSBootstrap(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"]
	reg.Accredit("acme")

	// A signed domain with NO DS (partial deployment) publishing CDS.
	z := zone.New("boot.com")
	z.MustAdd(dnswire.NewRR("boot.com", 3600, &dnswire.SOA{
		MName: "ns1.boot.net", RName: "hostmaster.boot.com",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR("boot.com", 3600, &dnswire.NS{Host: "ns1.boot.net"}))
	signer, err := zone.NewSigner(dnswire.AlgED25519, e.Clock.Day().Time())
	if err != nil {
		t.Fatal(err)
	}
	signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	if err := signer.Sign(z); err != nil {
		t.Fatal(err)
	}
	if err := signer.PublishCDS(z, dnswire.DigestSHA256); err != nil {
		t.Fatal(err)
	}
	dnstestServer(e, "ns1.boot.net").AddZone(z)
	if err := reg.Register("acme", "boot.com", []string{"ns1.boot.net"}); err != nil {
		t.Fatal(err)
	}

	// Without bootstrap policy: rejected.
	report, err := reg.ScanCDS(context.Background(), e.Net, e.Clock.Day(), false)
	if err != nil {
		t.Fatal(err)
	}
	if report.Bootstrapped != 0 || report.Rejected != 1 {
		t.Fatalf("no-bootstrap report: %+v", report)
	}
	// With bootstrap: DS established.
	report, err = reg.ScanCDS(context.Background(), e.Net, e.Clock.Day(), true)
	if err != nil {
		t.Fatal(err)
	}
	if report.Bootstrapped != 1 {
		t.Fatalf("bootstrap report: %+v", report)
	}
	r, _ := reg.Registration("boot.com")
	if len(r.DS) != 1 || !dnssec.MatchDS("boot.com", r.DS[0], signer.KSK.DNSKEY()) {
		t.Error("bootstrapped DS wrong")
	}
}

func TestDropRemovesDelegation(t *testing.T) {
	e := newEco(t)
	reg := e.Registries["com"]
	reg.Accredit("acme")
	if err := reg.Register("acme", "gone.com", []string{"ns1.op.net"}); err != nil {
		t.Fatal(err)
	}
	ds := &dnswire.DS{KeyTag: 3, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if err := reg.SetDS("acme", "gone.com", []*dnswire.DS{ds}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drop("acme", "gone.com"); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Registration("gone.com"); ok {
		t.Error("registration survived Drop")
	}
	z := reg.Zone()
	if len(z.Lookup("gone.com", dnswire.TypeNS)) != 0 || len(z.Lookup("gone.com", dnswire.TypeDS)) != 0 {
		t.Error("zone records survived Drop")
	}
	// The TLD server now answers NXDOMAIN for it.
	q := dnswire.NewQuery(9, "gone.com", dnswire.TypeNS)
	resp := reg.Server().ServeDNS(q)
	if resp.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode after drop: %v", resp.RCode)
	}
	// Dropping someone else's domain is refused.
	reg.Accredit("rival")
	if err := reg.Register("acme", "keep.com", []string{"ns1.op.net"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drop("rival", "keep.com"); !errors.Is(err, registry.ErrWrongRegistrar) {
		t.Errorf("cross-registrar drop: %v", err)
	}
}
