package registry

import (
	"context"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/simtime"
)

// CDSReport summarizes one CDS/CDNSKEY polling sweep (RFC 7344, RFC 8078).
type CDSReport struct {
	Day simtime.Day
	// Scanned is the number of registrations polled.
	Scanned int
	// Updated counts DS RRsets replaced from authenticated CDS records.
	Updated int
	// Bootstrapped counts initial DS publications accepted from insecure
	// CDS records (RFC 8078 section 3 "accept with policy").
	Bootstrapped int
	// Removed counts DS RRsets deleted via the algorithm-0 sentinel.
	Removed int
	// Rejected counts CDS RRsets that failed authentication.
	Rejected int
}

// ScanCDS polls every registration's apex for CDS records and applies
// authenticated changes to the registry DS database. When bootstrap is
// true, domains without an existing DS may establish one from an
// (unauthenticated but self-consistent) CDS — the policy .cz adopted; with
// bootstrap false only domains already in the chain of trust can roll keys.
//
// This is the mechanism the paper's section 8 recommends registries deploy
// to remove the human DS-relay step entirely.
func (r *Registry) ScanCDS(ctx context.Context, ex exchange.Exchanger, day simtime.Day, bootstrap bool) (*CDSReport, error) {
	if !r.cfg.SupportsCDS {
		return nil, ErrNoDNSSEC
	}
	r.mu.RLock()
	type item struct {
		domain string
		regID  string
		ns     []string
		ds     []*dnswire.DS
	}
	var items []item
	for d, reg := range r.regs {
		items = append(items, item{d, reg.RegistrarID, append([]string(nil), reg.NS...), append([]*dnswire.DS(nil), reg.DS...)})
	}
	r.mu.RUnlock()

	report := &CDSReport{Day: day}
	var qid uint16
	for _, it := range items {
		report.Scanned++
		qid++
		cdsRRs, sigs, keys, keyRRs, keySigs := r.fetchCDS(ctx, ex, qid, it.domain, it.ns)
		if len(cdsRRs) == 0 {
			continue
		}
		var cds []*dnswire.CDS
		for _, rr := range cdsRRs {
			cds = append(cds, rr.Data.(*dnswire.CDS))
		}
		newDS, remove := dnssec.DSFromCDS(cds)
		authenticated := false
		if len(it.ds) > 0 {
			// RFC 7344: the CDS must be signed by a key that the current
			// chain of trust (existing DS) vouches for.
			var trusted []*dnswire.DNSKEY
			for _, dk := range keys {
				if dnssec.MatchAnyDS(it.domain, it.ds, []*dnswire.DNSKEY{dk}) {
					trusted = append(trusted, dk)
				}
			}
			// The DNSKEY RRset itself must verify under a trusted key, and
			// the CDS RRset under some key in the (now-verified) set.
			keysValid := false
			for _, sig := range keySigs {
				if dnssec.VerifyWithAnyKey(keyRRs, sig, trusted, day.Time()) == nil {
					keysValid = true
					break
				}
			}
			if keysValid {
				for _, sig := range sigs {
					if dnssec.VerifyWithAnyKey(cdsRRs, sig, keys, day.Time()) == nil {
						authenticated = true
						break
					}
				}
			}
		} else if bootstrap && !remove {
			// No existing DS: accept self-consistent CDS (TOFU policy).
			for _, sig := range sigs {
				if dnssec.VerifyWithAnyKey(cdsRRs, sig, keys, day.Time()) == nil {
					authenticated = true
					break
				}
			}
			if authenticated {
				// The bootstrap CDS must match a served DNSKEY.
				if !dnssec.MatchAnyDS(it.domain, newDS, keys) {
					authenticated = false
				}
			}
		}
		if !authenticated {
			report.Rejected++
			continue
		}
		switch {
		case remove:
			if err := r.SetDS(it.regID, it.domain, nil); err == nil {
				report.Removed++
			}
		case len(it.ds) == 0:
			if err := r.SetDS(it.regID, it.domain, newDS); err == nil {
				report.Bootstrapped++
			}
		default:
			if err := r.SetDS(it.regID, it.domain, newDS); err == nil {
				report.Updated++
			}
		}
	}
	return report, nil
}

// fetchCDS queries a domain's nameservers for its CDS RRset and DNSKEY
// RRset (both with signatures).
func (r *Registry) fetchCDS(ctx context.Context, ex exchange.Exchanger, qid uint16, domain string, ns []string) (cdsRRs []*dnswire.RR, cdsSigs []*dnswire.RRSIG, keys []*dnswire.DNSKEY, keyRRs []*dnswire.RR, keySigs []*dnswire.RRSIG) {
	ask := func(t dnswire.Type) *dnswire.Message {
		q := dnswire.NewQuery(qid, domain, t)
		q.SetEDNS(4096, true)
		for _, host := range ns {
			resp, err := ex.Exchange(ctx, host, q)
			if err == nil && resp.RCode == dnswire.RCodeSuccess {
				return resp
			}
		}
		return nil
	}
	if resp := ask(dnswire.TypeCDS); resp != nil {
		for _, rr := range resp.Answers {
			switch d := rr.Data.(type) {
			case *dnswire.CDS:
				cdsRRs = append(cdsRRs, rr)
			case *dnswire.RRSIG:
				if d.TypeCovered == dnswire.TypeCDS {
					cdsSigs = append(cdsSigs, d)
				}
			}
		}
	}
	if resp := ask(dnswire.TypeDNSKEY); resp != nil {
		for _, rr := range resp.Answers {
			switch d := rr.Data.(type) {
			case *dnswire.DNSKEY:
				keys = append(keys, d)
				keyRRs = append(keyRRs, rr)
			case *dnswire.RRSIG:
				if d.TypeCovered == dnswire.TypeDNSKEY {
					keySigs = append(keySigs, d)
				}
			}
		}
	}
	return
}
