// Package simtime provides the day-granular clock used throughout the
// ecosystem simulation. The paper's datasets are daily snapshots, so a Day
// index (days since 2015-01-01 UTC) is the natural unit; conversions to
// time.Time anchor DNSSEC signature validity windows.
package simtime

import (
	"fmt"
	"time"
)

// Day counts days since the simulation epoch, 2015-01-01 UTC.
type Day int

// Epoch is day zero.
var Epoch = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)

// Never marks "has not happened": comparisons against any real Day are
// always after.
const Never Day = 1 << 30

// Milestones of the paper's measurement window.
var (
	// GTLDStart is the first day of the .com/.net/.org scans (2015-03-01).
	GTLDStart = Date(2015, 3, 1)
	// NLStart is the first day of the .nl scans (2016-02-09).
	NLStart = Date(2016, 2, 9)
	// SEStart is the first day of the .se scans (2016-06-07).
	SEStart = Date(2016, 6, 7)
	// End is the last day of all scans (2016-12-31).
	End = Date(2016, 12, 31)
	// CloudflareUniversalDNSSEC is the launch date of Cloudflare's
	// universal DNSSEC (2015-11-11, section 7).
	CloudflareUniversalDNSSEC = Date(2015, 11, 11)
)

// Date builds a Day from a calendar date.
func Date(year int, month time.Month, day int) Day {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Day(t.Sub(Epoch) / (24 * time.Hour))
}

// FromTime truncates a time.Time to its Day.
func FromTime(t time.Time) Day {
	return Day(t.UTC().Sub(Epoch) / (24 * time.Hour))
}

// Time returns midnight UTC of the day.
func (d Day) Time() time.Time {
	return Epoch.Add(time.Duration(d) * 24 * time.Hour)
}

// String renders the day as an ISO date.
func (d Day) String() string {
	if d == Never {
		return "never"
	}
	return d.Time().Format("2006-01-02")
}

// Parse converts an ISO date ("2016-12-31") to a Day.
func Parse(s string) (Day, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("simtime: %w", err)
	}
	return FromTime(t), nil
}
