package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayConversions(t *testing.T) {
	if Date(2015, 1, 1) != 0 {
		t.Errorf("epoch day = %d", Date(2015, 1, 1))
	}
	if Date(2015, 1, 2) != 1 {
		t.Errorf("day 1 = %d", Date(2015, 1, 2))
	}
	if GTLDStart.String() != "2015-03-01" {
		t.Errorf("GTLDStart = %s", GTLDStart)
	}
	if End.String() != "2016-12-31" {
		t.Errorf("End = %s", End)
	}
	if CloudflareUniversalDNSSEC.String() != "2015-11-11" {
		t.Errorf("Cloudflare day = %s", CloudflareUniversalDNSSEC)
	}
	if NLStart.String() != "2016-02-09" || SEStart.String() != "2016-06-07" {
		t.Errorf("ccTLD starts: %s %s", NLStart, SEStart)
	}
	if Never.String() != "never" {
		t.Error("Never string")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(n uint16) bool {
		d := Day(n)
		return FromTime(d.Time()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("2016-06-07")
	if err != nil || d != SEStart {
		t.Errorf("Parse: %v %v", d, err)
	}
	if _, err := Parse("junk"); err == nil {
		t.Error("Parse accepted junk")
	}
}

func TestFromTimeTruncates(t *testing.T) {
	noon := time.Date(2016, 6, 7, 12, 34, 56, 0, time.UTC)
	if FromTime(noon) != SEStart {
		t.Errorf("FromTime(noon) = %v", FromTime(noon))
	}
}
