package tldsim

import (
	"time"

	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/simtime"
)

// Fault profiles for materialized worlds: the paper's sweeps ran against
// live infrastructure where operators drop packets, serve lame answers,
// and go dark for days. These helpers declare such flaky operators for a
// materialized day so the resilient scan path can be exercised — and its
// failure accounting verified — against a known fault schedule.

// LossyOperators deterministically picks frac of the distinct DNS
// operators appearing in domains and returns faultnet rules injecting
// packet loss on each of their nameservers, plus the chosen operator
// names (sorted). The selection is seeded, so the same inputs always
// produce the same flaky set.
func LossyOperators(domains []DomainState, frac, loss float64, seed int64) ([]faultnet.Rule, []string) {
	seen := map[string]bool{}
	var operators []string
	for i := range domains {
		if op := domains[i].Operator; !seen[op] {
			seen[op] = true
			operators = append(operators, op)
		}
	}
	return lossyFromOperators(operators, frac, loss, seed)
}

// OperatorOutage declares a dark window for one operator's nameserver: it
// times out on every simulated day in [from, to].
func OperatorOutage(operator string, from, to simtime.Day) faultnet.Rule {
	return faultnet.Rule{Pattern: nsFor(operator), OutageFrom: from, OutageTo: to}
}

// SlowOperator adds fixed latency to one operator's nameserver.
func SlowOperator(operator string, latency time.Duration) faultnet.Rule {
	return faultnet.Rule{Pattern: nsFor(operator), Latency: latency}
}

// FaultyExchanger wraps the materialized network in a fault injector bound
// to the materialized day, so scheduled outages line up with the day being
// measured.
func (m *Materialized) FaultyExchanger(seed int64, rules ...faultnet.Rule) *faultnet.Injector {
	day := m.Day
	return faultnet.New(m.Net, seed, func() simtime.Day { return day }, rules...)
}

// NSHostOf exposes the operator→nameserver mapping for tests and tools
// that need to address one operator's server directly.
func NSHostOf(operator string) string { return nsFor(operator) }

var _ exchange.Exchanger = (*faultnet.Injector)(nil)
