package tldsim

import (
	"securepki.org/registrarsec/internal/simtime"
)

// Counterfactual scenarios for the paper's section 8 recommendations: the
// same generative world re-run with one policy lever changed, so the
// projected effect of each recommendation can be quantified against the
// baseline. These are forward-looking what-ifs, clearly distinct from the
// calibrated reproduction.

// Scenario identifies one recommendation experiment.
type Scenario int

const (
	// Baseline: the world exactly as measured.
	Baseline Scenario = iota
	// DefaultDNSSEC (recommendation 1): every registrar-hosted domain at
	// the top-20 registrars gets DNSSEC by default, rolling out at each
	// domain's renewal after the policy change.
	DefaultDNSSEC
	// UniversalCDS (recommendations 2-3): every registry polls
	// CDS/CDNSKEY, so a published DNSKEY always gets its DS installed —
	// partial deployments become full, and third-party-operator customers
	// no longer need the manual relay.
	UniversalCDS
	// GTLDIncentives (recommendation 4): .com/.net/.org adopt .nl-style
	// financial incentives; the gTLD tail responds like the Dutch and
	// Swedish hosting markets did.
	GTLDIncentives
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case DefaultDNSSEC:
		return "registrars-default"
	case UniversalCDS:
		return "universal-cds"
	case GTLDIncentives:
		return "gtld-incentives"
	}
	return "baseline"
}

// policyChangeDay is when the counterfactual policy takes effect (early in
// the measurement window, so the projection is visible by its end).
var policyChangeDay = simtime.Date(2015, 6, 1)

// ScenarioCohorts derives the cohort list for a scenario from the
// calibrated catalogue.
func ScenarioCohorts(s Scenario) []Cohort {
	cohorts := NamedCohorts()
	switch s {
	case Baseline:
		return cohorts
	case DefaultDNSSEC:
		// The big hosting registrars flip to DNSSEC-by-default; existing
		// domains migrate at renewal (the Antagonist/PCExtreme precedents
		// show both renewal ramps and fast cutovers are operationally
		// real; renewal is the conservative choice).
		flip := map[string]bool{
			"domaincontrol.com": true, "hichina.com": true, "1and1": true,
			"worldnic.com": true, "name-services.com": true, "bluehost.com": true,
			"registrar-servers.com": true, "wixdns.net": true, "hostgator.com": true,
			"namebrightdns.com": true, "register.com": true, "ovh.net": true,
			"anycast.me": true, "dreamhost.com": true, "wordpress.com": true,
			"xincache.com": true, "googledomains.com": true, "123-reg.co.uk": true,
			"yahoo.com": true, "name.com": true,
		}
		for i := range cohorts {
			c := &cohorts[i]
			if !flip[c.Operator] {
				continue
			}
			// Eventual coverage ~95% (some customers run custom setups the
			// registrar cannot sign).
			start := c.Key.StartFrac
			cohorts[i].Key = Renewal(start, 0.95, policyChangeDay)
			if cohorts[i].DS.Mode == DSNever {
				cohorts[i].DS = DSSpec{Mode: DSWithKey}
			}
		}
		return cohorts
	case UniversalCDS:
		// CDS polling turns every published DNSKEY into a full deployment:
		// DS-never cohorts and relay cohorts complete automatically once
		// the registry first polls them after the change.
		for i := range cohorts {
			c := &cohorts[i]
			switch c.DS.Mode {
			case DSNever:
				cohorts[i].DS = DSSpec{Mode: DSFromDay, Day: policyChangeDay}
			case DSRelay:
				cohorts[i].DS = DSSpec{Mode: DSFromDay, Day: policyChangeDay}
			case DSWithKey:
				if c.DS.Prob != 0 && c.DS.Prob < 1 {
					cohorts[i].DS = DSSpec{Mode: DSFromDay, Day: policyChangeDay, BrokenFrac: c.DS.BrokenFrac}
				}
			}
		}
		return cohorts
	case GTLDIncentives:
		// gTLD hosters respond the way the .nl/.se markets did: tail
		// behaviour is handled by the world builder (see Build), so here
		// the named gTLD laggards ramp up at renewals.
		for i := range cohorts {
			c := &cohorts[i]
			if c.TLD != "com" && c.TLD != "net" && c.TLD != "org" {
				continue
			}
			// Hosting registrars with no or weak DNSSEC move to high
			// adoption; parking services stay dark (no incentive covers a
			// parked page's economics at $0.30/domain... actually it does,
			// which is exactly the paper's point — model them ramping too).
			if c.Key.EndFrac < 0.5 {
				cohorts[i].Key = Renewal(c.Key.StartFrac, 0.75, policyChangeDay)
				cohorts[i].DS = DSSpec{Mode: DSWithKey, Prob: 0.97, BrokenFrac: 0.01}
			}
		}
		return cohorts
	}
	return cohorts
}

// BuildScenario generates a world for the scenario. The tail inherits the
// baseline calibration except under GTLDIncentives, where the gTLD tail
// adopts at ccTLD-like rates.
func BuildScenario(s Scenario, cfg WorldConfig) (*World, error) {
	if s == Baseline {
		return Build(cfg)
	}
	cfg.fill()
	// Reuse Build's tail machinery by constructing a world from the
	// modified named cohorts plus the baseline tail cohorts.
	base, err := Build(WorldConfig{
		Scale: cfg.Scale, Seed: cfg.Seed,
		TailOperators: cfg.TailOperators,
		WindowStart:   cfg.WindowStart, WindowEnd: cfg.WindowEnd,
	})
	if err != nil {
		return nil, err
	}
	named := ScenarioCohorts(s)
	// Scale named cohorts like Build does.
	var cohorts []Cohort
	for _, c := range named {
		c.Domains = int(float64(c.Domains)*cfg.Scale + 0.5)
		if c.Domains > 0 {
			cohorts = append(cohorts, c)
		}
	}
	// Tail cohorts from the baseline build (already scaled), adjusted per
	// scenario.
	for _, c := range base.Cohorts {
		if c.Registrar != "" {
			continue // named; replaced above
		}
		switch s {
		case UniversalCDS:
			c.DS = DSSpec{Mode: DSFromDay, Day: policyChangeDay, BrokenFrac: c.DS.BrokenFrac}
		case GTLDIncentives:
			if c.TLD == "com" || c.TLD == "net" || c.TLD == "org" {
				// The tail responds like the .nl tail did: adoption grows
				// toward ~40% with near-complete DS upload.
				c.Key = Renewal(c.Key.StartFrac, 0.40, policyChangeDay)
				c.DS = DSSpec{Mode: DSWithKey, Prob: 0.95, BrokenFrac: 0.015}
			}
		}
		cohorts = append(cohorts, c)
	}
	w := &World{Config: cfg, Cohorts: cohorts}
	w.idx = buildIndexStreaming(&cfg, cohorts, cfg.Seed*31+int64(s), cfg.Workers)
	return w, nil
}
