package tldsim

import (
	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/simtime"
)

// This file encodes the paper's empirical registrar catalogue: the top-20
// registrars by market share (Table 2), the top-10 registrars by number of
// DNSKEY-publishing domains (Table 3), the registrar/reseller role matrix
// (Table 4), the parking services and third-party operators of section
// 5.1, and the per-registrar adoption dynamics read off Figures 4-8.
//
// Domain counts are the paper's December 31, 2016 values (unscaled; the
// world builder applies WorldConfig.Scale). Behavioural profiles carry the
// paper-reported endpoints as calibration constants; each is annotated with
// its source.

// GTLDs are the generic TLDs of the study; CCTLDs the country-code ones.
var (
	GTLDs  = []string{"com", "net", "org"}
	CCTLDs = []string{"nl", "se"}
	// AllTLDs is the full set, in the paper's order.
	AllTLDs = []string{"com", "net", "org", "nl", "se"}
)

// TLDTotals are the Table 1 population sizes on 2016-12-31.
var TLDTotals = map[string]int{
	"com": 118_147_199,
	"net": 13_773_903,
	"org": 9_682_750,
	"nl":  5_674_208,
	"se":  1_388_372,
}

// TLDKeyPct are the Table 1 "% with DNSKEY" targets on 2016-12-31.
var TLDKeyPct = map[string]float64{
	"com": 0.7,
	"net": 1.0,
	"org": 1.1,
	"nl":  51.6,
	"se":  46.7,
}

// gtldShare splits a combined .com/.net/.org count by the global TLD size
// ratio, since Table 2/3 report combined counts.
func gtldShare(total int) []struct {
	TLD string
	N   int
} {
	sum := TLDTotals["com"] + TLDTotals["net"] + TLDTotals["org"]
	net := total * TLDTotals["net"] / sum
	org := total * TLDTotals["org"] / sum
	return []struct {
		TLD string
		N   int
	}{
		{"com", total - net - org},
		{"net", net},
		{"org", org},
	}
}

// Cohort is one (operator, TLD) domain population with its adoption
// behaviour.
type Cohort struct {
	// Registrar is the display name ("OVH"); empty for anonymous tail
	// operators.
	Registrar string
	// Operator is the grouped NS identity ("ovh.net").
	Operator string
	TLD      string
	// Domains is the unscaled population size.
	Domains int
	// Key is the DNSKEY-adoption profile; DS the DS-upload behaviour.
	Key Profile
	DS  DSSpec
	// ExpiredSigFrac is the fraction of signed domains serving RRSIGs whose
	// validity window has lapsed — the signing-hygiene failure mode prior
	// misconfiguration studies report alongside missing DS records.
	ExpiredSigFrac float64
}

// nsFor maps an operator group to a concrete nameserver hostname for
// materialized zones.
func nsFor(operator string) string { return "ns1." + operator }

// pcxStepDay is PCExtreme's observed mass enablement (March 2015, jumping
// 0.44%→98.3% within ten days).
var pcxStepDay = simtime.Date(2015, 3, 15)

// antagonistSwitchDay is Antagonist's partner switch to OpenProvider
// (December 2014); migration happens at each domain's renewal.
var antagonistSwitchDay = simtime.Date(2014, 12, 1)

// keySystemsDSDay is when TransIP's .se partner "enabled DNSSEC at a later
// date" (calibrated to land the 48.4% end-of-window full rate).
var keySystemsDSDay = simtime.Date(2016, 1, 15)

// NamedCohorts returns every named (operator, TLD) cohort.
func NamedCohorts() []Cohort {
	var out []Cohort
	// addGTLD splits a combined gTLD population across com/net/org with a
	// shared profile.
	addGTLD := func(registrar, operator string, total int, key Profile, ds DSSpec) {
		for _, sh := range gtldShare(total) {
			out = append(out, Cohort{Registrar: registrar, Operator: operator, TLD: sh.TLD, Domains: sh.N, Key: key, DS: ds})
		}
	}
	add := func(registrar, operator, tld string, n int, key Profile, ds DSSpec) {
		out = append(out, Cohort{Registrar: registrar, Operator: operator, TLD: tld, Domains: n, Key: key, DS: ds})
	}
	none := Flat(0)
	withDS := DSSpec{Mode: DSWithKey}

	// ---- Table 2: top-20 registrars by market share (combined gTLD). ----
	// GoDaddy: paid add-on; 8,139 of 37.65M signed (0.02%), flat (Fig. 4).
	addGTLD("GoDaddy", "domaincontrol.com", 37_652_477, Flat(0.000216), withDS)
	addGTLD("Alibaba", "hichina.com", 4_292_138, Flat(0.0000007), withDS)
	addGTLD("1AND1", "1and1", 3_802_824, none, withDS)
	addGTLD("Network Solutions", "worldnic.com", 2_534_673, none, withDS)
	// eNom: 10 DNSKEY domains.
	addGTLD("eNom", "name-services.com", 2_525_828, Flat(0.000004), withDS)
	addGTLD("Bluehost", "bluehost.com", 2_066_503, none, withDS)
	// NameCheap: DNSSEC by default on premium plans only; 13,232 DNSKEY
	// domains; publishes DS for .com/.net but not .org (Table 3).
	for _, sh := range gtldShare(1_963_717) {
		ds := withDS
		if sh.TLD == "org" {
			ds = DSSpec{Mode: DSNever}
		}
		add("NameCheap", "registrar-servers.com", sh.TLD, sh.N, Linear(0.0045, 0.00674), ds)
	}
	addGTLD("WIX", "wixdns.net", 1_887_139, none, withDS)
	addGTLD("HostGator", "hostgator.com", 1_849_735, none, withDS)
	addGTLD("NameBright", "namebrightdns.com", 1_823_823, none, withDS)
	addGTLD("register.com", "register.com", 1_311_969, none, withDS)
	// OVH: free opt-in; Figure 4 shows DNSKEY+DS rising ~18%→25.9%. The
	// fleet splits across two NS groups (ovh.net / anycast.me, Table 3).
	ovhKey := Linear(0.21, 0.302)
	ovhDS := DSSpec{Mode: DSWithKey, Prob: 0.87}
	addGTLD("OVH", "ovh.net", 1_056_000, ovhKey, ovhDS)
	addGTLD("OVH", "anycast.me", 172_578, ovhKey, ovhDS)
	addGTLD("DreamHost", "dreamhost.com", 1_117_902, Flat(0.000002), withDS)
	addGTLD("WordPress", "wordpress.com", 888_174, Flat(0.0000034), withDS)
	addGTLD("Amazon", "awsdns", 865_065, none, withDS)
	addGTLD("Xinnet", "xincache.com", 836_293, none, withDS)
	// Google: 1,945 DNSKEY domains (Cloud DNS alpha participants).
	addGTLD("Google", "googledomains.com", 813_945, Flat(0.00239), withDS)
	addGTLD("123-reg", "123-reg.co.uk", 720_435, Flat(0.0000014), withDS)
	addGTLD("Yahoo", "yahoo.com", 690_823, none, withDS)
	addGTLD("Rightside", "name.com", 663_616, none, withDS)

	// ---- Parking services (footnote 11): no DNSSEC at all. ----
	for _, p := range []struct {
		name, op string
		n        int
	}{
		{"Ename", "ename.com", 1_604_676},
		{"BuyDomains", "buydomains.com", 1_190_973},
		{"SedoParking", "sedoparking.com", 1_186_838},
		{"DomainNameSales", "domainnamesales.com", 1_081_944},
		{"CashParking", "cashparking.com", 1_012_114},
		{"HugeDomains", "hugedomains.com", 807_607},
		{"ParkingCrew", "parkingcrew.net", 660_081},
		{"RookMedia", "rookmedia.net", 619_254},
		{"ztomy", "ztomy.com", 631_381},
	} {
		addGTLD(p.name, p.op, p.n, none, withDS)
	}

	// ---- Third-party DNS operators (section 7). ----
	addGTLD("DNSPod", "dnspod.net", 2_309_215, none, withDS)
	// Cloudflare: universal DNSSEC launched 2015-11-11; 1.9% of domains
	// have DNSKEYs by the end of the window, and only ~60.7% of those ever
	// get their DS relayed to the registrar (Figure 8).
	addGTLD("Cloudflare", "cloudflare.com", 1_561_687,
		Launch(0.019, simtime.CloudflareUniversalDNSSEC),
		DSSpec{Mode: DSRelay, Prob: 0.622, LagMeanDays: 10, BrokenFrac: 0.01})

	// ---- Table 3: DNSSEC-heavy registrars, gTLD populations. ----
	// Loopia signs everything but publishes DS only for .se → its 131,726
	// gTLD DNSKEY domains are all partial (Figure 5).
	addGTLD("Loopia", "loopia.se", 135_000, Linear(0.93, 0.976), DSSpec{Mode: DSNever})
	addGTLD("DomainNameShop", "hyp.net", 97_000, Linear(0.92, 0.97), withDS)
	// TransIP: 99.2% full where it is itself the registrar (Figure 7).
	tipDS := DSSpec{Mode: DSWithKey, Prob: 0.997}
	addGTLD("TransIP", "transip.net", 93_000, Linear(0.95, 0.98), tipDS)
	addGTLD("TransIP", "transip.nl", 48_000, Linear(0.95, 0.98), tipDS)
	// MeshDigital: signs by default but uploaded a DS for only 4 of 60,425
	// domains.
	addGTLD("MeshDigital", "domainmonster.com", 62_000, Linear(0.93, 0.975),
		DSSpec{Mode: DSWithKey, Prob: 0.0001})
	// Binero: 37.8% of its gTLD domains fully deployed (Figure 6).
	addGTLD("Binero", "binero.se", 100_000, Linear(0.42, 0.45),
		DSSpec{Mode: DSWithKey, Prob: 0.84})
	// KPN: signs everywhere, DS only for .nl (Figure 5).
	addGTLD("KPN", "is.nl", 16_100, Linear(0.95, 0.978), DSSpec{Mode: DSNever})
	// PCExtreme: the March 2015 step, 0.44%→98.3% in ten days, 97.0%
	// sustained (Figure 7).
	addGTLD("PCExtreme", "pcextreme.nl", 15_300,
		Step(0.0044, 0.983, pcxStepDay, 10), DSSpec{Mode: DSWithKey, Prob: 0.987})
	// Antagonist: renewal-driven migration after the December 2014 partner
	// switch, reaching 52.7% (Figure 6).
	addGTLD("Antagonist", "webhostingserver.nl", 28_000,
		Renewal(0.02, 0.527, antagonistSwitchDay), withDS)

	// ---- ccTLD populations (.nl / .se), incentive-driven (Figure 5-7). ----
	add("TransIP", "transip.nl", "nl", 700_000, Linear(0.97, 0.992), tipDS)
	add("KPN", "is.nl", "nl", 400_000, Linear(0.94, 0.97), withDS)
	add("Antagonist", "webhostingserver.nl", "nl", 150_000, Linear(0.90, 0.954), withDS)
	add("PCExtreme", "pcextreme.nl", "nl", 60_000, Step(0.02, 0.983, pcxStepDay, 10), withDS)
	add("OVH", "ovh.net", "nl", 50_000, ovhKey, ovhDS)
	add("GoDaddy", "domaincontrol.com", "nl", 100_000, Flat(0.000216), withDS)

	add("Loopia", "loopia.se", "se", 250_000, Linear(0.90, 0.952), withDS)
	add("Binero", "binero.se", "se", 140_000, Linear(0.90, 0.929), withDS)
	// TransIP resells .se through KeySystems, which enabled DS handling
	// only in 2016; uploads complete at each domain's next renewal,
	// landing at 48.4% full by the window end (Figure 7).
	add("TransIP", "transip.net", "se", 40_000, Linear(0.95, 0.98),
		DSSpec{Mode: DSFromDay, Day: keySystemsDSDay, Prob: 0.52})
	add("GoDaddy", "domaincontrol.com", "se", 30_000, Flat(0.000216), withDS)
	add("OVH", "ovh.net", "se", 20_000, ovhKey, ovhDS)

	return out
}

// RegistrarSpec pairs a probe-able policy with catalogue metadata.
type RegistrarSpec struct {
	Policy registrar.Policy
	// Top20 marks Table 2 membership; Top10DNSSEC marks Table 3.
	Top20       bool
	Top10DNSSEC bool
	// Partner marks pure partner registrars (Ascio, OpenProvider,
	// KeySystems) that the paper's resellers route through.
	Partner bool
	// GTLDDomains is the combined .com/.net/.org domain count (Table 2).
	GTLDDomains int
	// DNSKEYDomains is the combined gTLD DNSKEY count (Table 3).
	DNSKEYDomains int
}

// roleSelf marks direct accreditation for the given TLDs.
func roleSelf(tlds ...string) map[string]registrar.Role {
	out := make(map[string]registrar.Role, len(tlds))
	for _, tld := range tlds {
		out[tld] = registrar.Role{Kind: registrar.RoleRegistrar}
	}
	return out
}

// via adds reseller roles through a partner.
func via(roles map[string]registrar.Role, partner string, tlds ...string) map[string]registrar.Role {
	for _, tld := range tlds {
		roles[tld] = registrar.Role{Kind: registrar.RoleReseller, Partner: partner}
	}
	return roles
}

// RegistrarSpecs returns the full probe-able catalogue: the Table 2 top-20,
// the Table 3 top-10, and the partner registrars of Table 4. Policies
// transcribe the tables' cells; roles transcribe Table 4.
func RegistrarSpecs() []RegistrarSpec {
	all5 := roleSelf("com", "net", "org", "nl", "se")
	_ = all5
	specs := []RegistrarSpec{
		// -------------------- partners (Table 4, grey cells) ------------
		{Partner: true, Policy: registrar.Policy{
			ID: "ascio", Name: "Ascio", NSHosts: []string{"ns1.ascio.net"},
			OwnerDNSSEC: true, DSChannel: channel.Web,
			Roles: roleSelf("com", "net", "org", "nl", "se"),
		}},
		{Partner: true, Policy: registrar.Policy{
			ID: "openprovider", Name: "Open Provider", NSHosts: []string{"ns1.openprovider.nl"},
			OwnerDNSSEC: true, DSChannel: channel.Web,
			Roles: roleSelf("com", "net", "org", "nl", "se"),
		}},
		{Partner: true, Policy: registrar.Policy{
			ID: "keysystems", Name: "Key Systems", NSHosts: []string{"ns1.key-systems.net"},
			OwnerDNSSEC: true, DSChannel: channel.Web,
			Roles:         roleSelf("com", "net", "org", "se"),
			DSSupportFrom: keySystemsDSDay,
		}},

		// -------------------- Table 2: top-20 ---------------------------
		{Top20: true, GTLDDomains: 37_652_477, DNSKEYDomains: 8_139, Policy: registrar.Policy{
			ID: "godaddy", Name: "GoDaddy", NSHosts: []string{"ns01.domaincontrol.com", "ns02.domaincontrol.com"},
			HostedDNSSEC: registrar.SupportPaid, DNSSECFee: 35,
			OwnerDNSSEC: true, DSChannel: channel.Web, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org", "nl", "se"),
		}},
		{Top20: true, GTLDDomains: 4_292_138, DNSKEYDomains: 3, Policy: registrar.Policy{
			ID: "alibaba", Name: "Alibaba", NSHosts: []string{"dns1.hichina.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 3_802_824, Policy: registrar.Policy{
			ID: "1and1", Name: "1AND1", NSHosts: []string{"ns-1and1.co.uk"},
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 2_534_673, Policy: registrar.Policy{
			ID: "netsol", Name: "Network Solutions", NSHosts: []string{"ns1.worldnic.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		// eNom: owner DS via email; validates the email (code) but not the
		// DS record itself.
		{Top20: true, GTLDDomains: 2_525_828, DNSKEYDomains: 10, Policy: registrar.Policy{
			ID: "enom", Name: "eNom", NSHosts: []string{"dns1.name-services.com"},
			OwnerDNSSEC: true, DSChannel: channel.Email,
			EmailAuth: registrar.EmailAuthCode, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 2_066_503, Policy: registrar.Policy{
			ID: "bluehost", Name: "Bluehost", NSHosts: []string{"ns1.bluehost.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		// NameCheap: DNSSEC by default only on premium plans; .org resold
		// through eNom (Table 4).
		{Top20: true, Top10DNSSEC: true, GTLDDomains: 1_963_717, DNSKEYDomains: 13_232, Policy: registrar.Policy{
			ID: "namecheap", Name: "NameCheap", NSHosts: []string{"dns1.registrar-servers.com"},
			HostedDNSSEC:  registrar.SupportDefaultSomePlans,
			DNSSECPlans:   map[string]bool{"premiumdns": true},
			DefaultPlan:   "freedns",
			PublishDSTLDs: map[string]bool{"com": true, "net": true},
			OwnerDNSSEC:   true, DSChannel: channel.Web, ValidatesDS: false,
			Roles: via(roleSelf("com", "net"), "enom", "org"),
		}},
		{Top20: true, GTLDDomains: 1_887_139, Policy: registrar.Policy{
			ID: "wix", Name: "WIX", NSHosts: []string{"ns1.wixdns.net"},
			Roles: roleSelf("com", "net", "org"),
		}},
		// HostGator: DS conveyed by pasting it into a live chat; the agent
		// error model reproduces the mis-installation anecdote.
		{Top20: true, GTLDDomains: 1_849_735, Policy: registrar.Policy{
			ID: "hostgator", Name: "HostGator", NSHosts: []string{"ns1.hostgator.com"},
			OwnerDNSSEC: true, DSChannel: channel.Chat, ChatErrorRate: 0.02,
			Roles: roleSelf("com", "net", "org"),
		}},
		// NameBright: email channel with no authentication at all.
		{Top20: true, GTLDDomains: 1_823_823, Policy: registrar.Policy{
			ID: "namebright", Name: "NameBright", NSHosts: []string{"ns1.namebrightdns.com"},
			OwnerDNSSEC: true, DSChannel: channel.Email,
			EmailAuth: registrar.EmailAuthNone,
			Roles:     roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 1_311_969, Policy: registrar.Policy{
			ID: "registercom", Name: "register.com", NSHosts: []string{"dns1.register.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		// OVH: free opt-in DNSSEC when hosting; validates uploaded DS (one
		// of only two in Table 2).
		{Top20: true, Top10DNSSEC: true, GTLDDomains: 1_228_578, DNSKEYDomains: 371_961, Policy: registrar.Policy{
			ID: "ovh", Name: "OVH", NSHosts: []string{"dns1.ovh.net", "ns1.anycast.me"},
			HostedDNSSEC: registrar.SupportOptIn,
			OwnerDNSSEC:  true, DSChannel: channel.Web, ValidatesDS: true,
			Roles: roleSelf("com", "net", "org", "nl", "se"),
		}},
		// DreamHost: email channel, validates the DS but not the email.
		{Top20: true, GTLDDomains: 1_117_902, Policy: registrar.Policy{
			ID: "dreamhost", Name: "DreamHost", NSHosts: []string{"ns1.dreamhost.com"},
			OwnerDNSSEC: true, DSChannel: channel.Email,
			EmailAuth: registrar.EmailAuthNone, ValidatesDS: true,
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 888_174, DNSKEYDomains: 3, Policy: registrar.Policy{
			ID: "wordpress", Name: "WordPress", NSHosts: []string{"ns1.wordpress.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		// Amazon: customers upload a DNSKEY; Route 53 derives the DS.
		{Top20: true, GTLDDomains: 865_065, Policy: registrar.Policy{
			ID: "amazon", Name: "Amazon", NSHosts: []string{"ns-1.awsdns-01.com"},
			OwnerDNSSEC: true, DSChannel: channel.Web, AcceptsDNSKEY: true,
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 836_293, Policy: registrar.Policy{
			ID: "xinnet", Name: "Xinnet", NSHosts: []string{"ns1.xincache.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 813_945, DNSKEYDomains: 1_945, Policy: registrar.Policy{
			ID: "google", Name: "Google", NSHosts: []string{"ns1.googledomains.com"},
			OwnerDNSSEC: true, DSChannel: channel.Web, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org"),
		}},
		// 123-reg: DS attached to a support ticket.
		{Top20: true, GTLDDomains: 720_435, DNSKEYDomains: 1, Policy: registrar.Policy{
			ID: "123reg", Name: "123-reg", NSHosts: []string{"ns1.123-reg.co.uk"},
			OwnerDNSSEC: true, DSChannel: channel.Ticket, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 690_823, Policy: registrar.Policy{
			ID: "yahoo", Name: "Yahoo", NSHosts: []string{"ns1.yahoo.com"},
			Roles: roleSelf("com", "net", "org"),
		}},
		{Top20: true, GTLDDomains: 663_616, Policy: registrar.Policy{
			ID: "rightside", Name: "Rightside", NSHosts: []string{"ns1.name.com"},
			OwnerDNSSEC: true, DSChannel: channel.Web, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org"),
		}},

		// -------------------- Table 3: remaining top-10 DNSSEC ----------
		// Loopia: signs by default everywhere, publishes DS only for .se;
		// owner DS via authenticated email; resells gTLDs and .nl through
		// Ascio.
		{Top10DNSSEC: true, DNSKEYDomains: 131_726, Policy: registrar.Policy{
			ID: "loopia", Name: "Loopia", NSHosts: []string{"ns1.loopia.se"},
			HostedDNSSEC:  registrar.SupportDefault,
			PublishDSTLDs: map[string]bool{"se": true},
			OwnerDNSSEC:   true, DSChannel: channel.Email,
			EmailAuth: registrar.EmailAuthCode, ValidatesDS: false,
			Roles: via(roleSelf("se"), "ascio", "com", "net", "org", "nl"),
		}},
		{Top10DNSSEC: true, DNSKEYDomains: 94_084, Policy: registrar.Policy{
			ID: "domainnameshop", Name: "DomainNameShop", NSHosts: []string{"ns1.hyp.net"},
			HostedDNSSEC: registrar.SupportDefault,
			OwnerDNSSEC:  true, DSChannel: channel.Web, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org"),
		}},
		// TransIP: registrar for com/net/org/nl, reseller of .se via
		// KeySystems.
		{Top10DNSSEC: true, DNSKEYDomains: 138_110, Policy: registrar.Policy{
			ID: "transip", Name: "TransIP", NSHosts: []string{"ns0.transip.net", "ns1.transip.nl"},
			HostedDNSSEC: registrar.SupportDefault,
			OwnerDNSSEC:  true, DSChannel: channel.Web, ValidatesDS: false,
			Roles: via(roleSelf("com", "net", "org", "nl"), "keysystems", "se"),
		}},
		// MeshDigital: signs everything, essentially never uploads the DS;
		// owner DS via unauthenticated email.
		{Top10DNSSEC: true, DNSKEYDomains: 60_425, Policy: registrar.Policy{
			ID: "meshdigital", Name: "MeshDigital", NSHosts: []string{"ns1.domainmonster.com"},
			HostedDNSSEC:  registrar.SupportDefault,
			PublishDSTLDs: map[string]bool{},
			OwnerDNSSEC:   true, DSChannel: channel.Email,
			EmailAuth: registrar.EmailAuthNone,
			Roles:     roleSelf("com", "net", "org", "nl"),
		}},
		// Binero: default signing; owner DS via email that is not
		// authenticated at all — the registrar that accepted a DS from a
		// different address (section 6.4).
		{Top10DNSSEC: true, DNSKEYDomains: 44_650, Policy: registrar.Policy{
			ID: "binero", Name: "Binero", NSHosts: []string{"ns1.binero.se"},
			HostedDNSSEC: registrar.SupportDefault,
			OwnerDNSSEC:  true, DSChannel: channel.Email,
			EmailAuth: registrar.EmailAuthNone, ValidatesDS: false,
			Roles: roleSelf("com", "net", "org", "se"),
		}},
		// KPN: default signing (DS only for .nl); no owner-operated DNSSEC.
		{Top10DNSSEC: true, DNSKEYDomains: 15_738, Policy: registrar.Policy{
			ID: "kpn", Name: "KPN", NSHosts: []string{"ns1.is.nl"},
			HostedDNSSEC:  registrar.SupportDefault,
			PublishDSTLDs: map[string]bool{"nl": true},
			OwnerDNSSEC:   false,
			Roles:         via(via(roleSelf("nl"), "ascio", "com", "net", "org"), "openprovider", "se"),
		}},
		// PCExtreme: default signing; fetches the customer's DNSKEY and
		// derives the DS itself — the paper's recommended flow.
		{Top10DNSSEC: true, DNSKEYDomains: 14_967, Policy: registrar.Policy{
			ID: "pcextreme", Name: "PCExtreme", NSHosts: []string{"ns1.pcextreme.nl"},
			HostedDNSSEC: registrar.SupportDefault,
			OwnerDNSSEC:  true, FetchesDNSKEY: true, ValidatesDS: true,
			Roles: via(roleSelf("nl"), "openprovider", "com", "net", "org"),
		}},
		// Antagonist: default signing; intentionally no owner DS upload.
		{Top10DNSSEC: true, DNSKEYDomains: 14_806, Policy: registrar.Policy{
			ID: "antagonist", Name: "Antagonist", NSHosts: []string{"ns1.webhostingserver.nl"},
			HostedDNSSEC: registrar.SupportDefault,
			OwnerDNSSEC:  false,
			Roles:        via(roleSelf("nl"), "openprovider", "com", "net", "org"),
		}},
	}
	return specs
}
