package tldsim

import (
	"context"
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// TestLongitudinalScanMatchesModelSeries runs the paper's actual pipeline
// end to end over several measurement days: a fixed domain sample is
// materialized as real DNS at each day, swept by the scan engine, archived
// in a dataset store, and analyzed into a time series — which must agree
// exactly with the state model's projection for the same sample.
func TestLongitudinalScanMatchesModelSeries(t *testing.T) {
	// A focused world: Cloudflare's launch dynamics give the series an
	// interesting shape across the chosen days.
	w, err := BuildCustom(WorldConfig{Scale: 1, Seed: 21}, []Cohort{
		{
			Registrar: "Cloudflare", Operator: "cloudflare.com", TLD: "com",
			Domains: 60,
			Key:     Launch(0.5, simtime.CloudflareUniversalDNSSEC),
			DS:      DSSpec{Mode: DSRelay, Prob: 0.6, LagMeanDays: 10},
		},
		{
			Registrar: "TransIP", Operator: "transip.net", TLD: "com",
			Domains: 40, Key: Linear(0.5, 0.9), DS: DSSpec{Mode: DSWithKey},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	domains := w.AllDomains()
	days := []simtime.Day{
		simtime.GTLDStart + 30,
		simtime.CloudflareUniversalDNSSEC + 30,
		simtime.Date(2016, 6, 1),
		simtime.End,
	}
	store := dataset.NewStore()
	for _, day := range days {
		mat, err := Materialize(day, domains)
		if err != nil {
			t.Fatalf("materialize %v: %v", day, err)
		}
		scanner, err := scan.New(scan.Config{
			Exchange: mat.Net, TLDServers: mat.TLDServers, Workers: 8,
			Clock: func() simtime.Day { return day },
		})
		if err != nil {
			t.Fatal(err)
		}
		var targets []scan.Target
		for _, d := range domains {
			targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
		}
		snap, _, err := scanner.ScanDay(context.Background(), day, targets)
		if err != nil {
			t.Fatal(err)
		}
		store.Add(snap)
	}

	for _, operator := range []string{"cloudflare.com", "transip.net"} {
		scanned := analysis.Series(store, analysis.ByOperator(operator))
		if len(scanned) != len(days) {
			t.Fatalf("%s: %d scanned points", operator, len(scanned))
		}
		for i, day := range days {
			model := w.SeriesFor(operator, "", day, day, 1)[0]
			got := scanned[i]
			if got.Total != model.Total || got.WithDNSKEY != model.WithDNSKEY ||
				got.WithDS != model.WithDS || got.Full != model.Full {
				t.Errorf("%s at %v: scanned {n=%d key=%d ds=%d full=%d}, model {n=%d key=%d ds=%d full=%d}",
					operator, day, got.Total, got.WithDNSKEY, got.WithDS, got.Full,
					model.Total, model.WithDNSKEY, model.WithDS, model.Full)
			}
		}
	}
	// And the shape is the launch curve: zero before, growing after.
	cf := analysis.Series(store, analysis.ByOperator("cloudflare.com"))
	if cf[0].WithDNSKEY != 0 {
		t.Error("Cloudflare had DNSKEYs before launch")
	}
	if cf[3].WithDNSKEY <= cf[1].WithDNSKEY {
		t.Error("Cloudflare series did not grow after launch")
	}
}
