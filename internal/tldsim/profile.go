// Package tldsim generates the synthetic five-TLD ecosystem on which the
// paper's measurements are reproduced: the named registrars of Tables 2-4
// with their observed policies and market shares, a power-law tail of
// anonymous DNS operators, and day-level DNSSEC adoption dynamics spanning
// the 2015-03-01 … 2016-12-31 measurement window.
//
// The model is generative, not a replay: every domain samples its "DNSKEY
// published" and "DS uploaded" days from its operator's behavioural
// profile (opt-in hazard, paid, default-at-creation, renewal-driven
// migration, launch events). The figures then emerge from counting — and
// the scan engine can materialize any day as real, signed DNS zones to
// verify that the aggregate counts match what live measurement observes.
//
// Calibration constants (start/end fractions, event days) are taken from
// the paper's reported endpoints and are documented inline; the shapes —
// who wins, by what factor, where the crossovers fall — are the
// reproduction targets.
package tldsim

import (
	"math/rand"

	"securepki.org/registrarsec/internal/simtime"
)

// ProfileKind selects the time profile with which domains of a cohort
// acquire DNSKEYs.
type ProfileKind int

const (
	// FlatProfile: a fixed fraction signed since before the window (no
	// growth) — GoDaddy's paid add-on population.
	FlatProfile ProfileKind = iota
	// LinearProfile: steady opt-in growth from StartFrac to EndFrac across
	// the measurement window — OVH's free opt-in.
	LinearProfile
	// StepProfile: a mass enablement over SpanDays starting at Day —
	// PCExtreme's 0.44%→98.3% cutover in ten days.
	StepProfile
	// RenewalProfile: domains enable at their first registration renewal
	// after Day — Antagonist's partner switch, where migration "can only
	// happen at the end of the current registration period".
	RenewalProfile
	// LaunchProfile: adoption starts at a product launch Day and grows
	// linearly to EndFrac by the window end — Cloudflare universal DNSSEC.
	LaunchProfile
)

// Profile describes DNSKEY acquisition for one cohort.
type Profile struct {
	Kind      ProfileKind
	StartFrac float64     // fraction signed at (or before) the window start
	EndFrac   float64     // fraction signed by the window end
	Day       simtime.Day // event day for Step/Renewal/Launch
	SpanDays  int         // step duration (default 10)
}

// Flat builds a no-growth profile.
func Flat(frac float64) Profile {
	return Profile{Kind: FlatProfile, StartFrac: frac, EndFrac: frac}
}

// Linear builds a steady-growth profile.
func Linear(start, end float64) Profile {
	return Profile{Kind: LinearProfile, StartFrac: start, EndFrac: end}
}

// Step builds a mass-enablement profile.
func Step(before, after float64, day simtime.Day, span int) Profile {
	return Profile{Kind: StepProfile, StartFrac: before, EndFrac: after, Day: day, SpanDays: span}
}

// Renewal builds a renewal-driven migration profile.
func Renewal(before, eventual float64, from simtime.Day) Profile {
	return Profile{Kind: RenewalProfile, StartFrac: before, EndFrac: eventual, Day: from}
}

// Launch builds a product-launch profile.
func Launch(end float64, day simtime.Day) Profile {
	return Profile{Kind: LaunchProfile, EndFrac: end, Day: day}
}

// sampleKeyDay draws the day a domain first publishes DNSKEYs, or
// simtime.Never. created is the domain's registration day (for renewal
// anniversaries); windowEnd bounds linear growth.
func (p Profile) sampleKeyDay(rng *rand.Rand, created simtime.Day, windowStart, windowEnd simtime.Day) simtime.Day {
	u := rng.Float64()
	switch p.Kind {
	case FlatProfile:
		if u < p.StartFrac {
			return earlier(created, windowStart)
		}
		return simtime.Never
	case LinearProfile:
		if u < p.StartFrac {
			return earlier(created, windowStart)
		}
		if u < p.EndFrac {
			// Uniform position within the growth span reproduces a linear
			// aggregate ramp.
			frac := (u - p.StartFrac) / (p.EndFrac - p.StartFrac)
			return windowStart + simtime.Day(frac*float64(windowEnd-windowStart))
		}
		return simtime.Never
	case StepProfile:
		if u < p.StartFrac {
			return earlier(created, windowStart)
		}
		if u < p.EndFrac {
			span := p.SpanDays
			if span <= 0 {
				span = 10
			}
			return p.Day + simtime.Day(rng.Intn(span+1))
		}
		return simtime.Never
	case RenewalProfile:
		if u < p.StartFrac {
			return earlier(created, windowStart)
		}
		if u < p.EndFrac {
			// The first renewal anniversary strictly after the event day.
			renewal := firstRenewalAfter(created, p.Day)
			return renewal
		}
		return simtime.Never
	case LaunchProfile:
		if u < p.EndFrac {
			span := float64(windowEnd - p.Day)
			if span < 1 {
				span = 1
			}
			return p.Day + simtime.Day(rng.Float64()*span)
		}
		return simtime.Never
	}
	return simtime.Never
}

// firstRenewalAfter returns the first yearly renewal anniversary of a
// domain created on created that falls strictly after day.
func firstRenewalAfter(created, day simtime.Day) simtime.Day {
	anniversary := (created%365 + 365) % 365
	renewal := anniversary
	for renewal <= day {
		renewal += 365
	}
	return renewal
}

func earlier(a, b simtime.Day) simtime.Day {
	if a < b {
		return a
	}
	return b
}

// DSMode describes how (and whether) the DS follows the DNSKEY to the
// registry for a cohort.
type DSMode int

const (
	// DSWithKey: the DS is uploaded together with the DNSKEY (registrar
	// with direct registry access and automatic upload).
	DSWithKey DSMode = iota
	// DSNever: DNSKEYs are published but the DS never reaches the registry
	// — the structural partial deployment of Loopia (.com), KPN (.com) and
	// MeshDigital.
	DSNever
	// DSFromDay: uploads become possible only from Day (a reseller whose
	// partner "enabled DNSSEC at a later date"); domains signed earlier get
	// their DS at their first renewal after Day.
	DSFromDay
	// DSRelay: a human must relay the DS (third-party operator customers):
	// it arrives with probability Prob after a short lag, else never — the
	// Cloudflare 60/40 split.
	DSRelay
)

// DSSpec configures DS behaviour for a cohort.
type DSSpec struct {
	Mode DSMode
	// Prob is the relay completion probability (DSRelay) or the fraction of
	// keyed domains whose DS is ever uploaded (DSWithKey; default 1).
	Prob float64
	// Day is the enablement day for DSFromDay.
	Day simtime.Day
	// LagMeanDays is the mean relay lag (DSRelay; default 7).
	LagMeanDays float64
	// BrokenFrac is the fraction of uploaded DS records that match no
	// served key (registrars that accept garbage).
	BrokenFrac float64
}

// sampleDS draws the DS upload day (or Never) and whether the DS is broken,
// given the key day.
func (s DSSpec) sampleDS(rng *rand.Rand, keyDay, created simtime.Day) (simtime.Day, bool) {
	if keyDay == simtime.Never {
		return simtime.Never, false
	}
	broken := s.BrokenFrac > 0 && rng.Float64() < s.BrokenFrac
	switch s.Mode {
	case DSWithKey:
		prob := s.Prob
		if prob == 0 {
			prob = 1
		}
		if rng.Float64() < prob {
			return keyDay, broken
		}
		return simtime.Never, false
	case DSNever:
		return simtime.Never, false
	case DSFromDay:
		prob := s.Prob
		if prob == 0 {
			prob = 1
		}
		if rng.Float64() >= prob {
			return simtime.Never, false
		}
		if keyDay >= s.Day {
			return keyDay, broken
		}
		// Signed before the partner could accept DS records: the upload
		// happens at the first renewal after enablement.
		return firstRenewalAfter(created, s.Day), broken
	case DSRelay:
		if rng.Float64() >= s.Prob {
			return simtime.Never, false
		}
		lag := s.LagMeanDays
		if lag <= 0 {
			lag = 7
		}
		return keyDay + simtime.Day(rng.ExpFloat64()*lag), broken
	}
	return simtime.Never, false
}
