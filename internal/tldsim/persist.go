package tldsim

// World persistence: build once, load many. A world's columnar index is
// saved in the colstore section format and re-loaded (memory-mapped where
// possible) in O(seconds), keyed by a fingerprint of everything that
// determines the population — so a cache hit is exactly the world a fresh
// build would have produced.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"securepki.org/registrarsec/internal/colstore"
)

// Fingerprint hashes the generation-determining parts of the config:
// scale, seed, window, and tail-operator plan. Workers is excluded — the
// build is byte-identical at any parallelism.
func (c WorldConfig) Fingerprint() string {
	cc := c
	cc.fill()
	tails := make([]string, 0, len(cc.TailOperators))
	for tld, n := range cc.TailOperators {
		tails = append(tails, tld+":"+strconv.Itoa(n))
	}
	sort.Strings(tails)
	canon := fmt.Sprintf("v1 scale=%.12g seed=%d window=%d..%d tail=%v",
		cc.Scale, cc.Seed, int(cc.WindowStart), int(cc.WindowEnd), tails)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8])
}

// Save writes the world's columnar index to path atomically, annotated
// with the config fingerprint so a later load can verify provenance.
func (w *World) Save(path string) error {
	return w.Index().SaveFile(path, map[string]string{
		"fingerprint": w.Config.Fingerprint(),
		"scale":       strconv.FormatFloat(w.Config.Scale, 'g', -1, 64),
		"seed":        strconv.FormatInt(w.Config.Seed, 10),
	})
}

// LoadWorld reads a saved world from path. The returned world serves
// every query from the loaded index; Cohorts are not persisted (use
// BuildCached, which re-plans them, if scenario derivation is needed).
// Close the world to release the mapping.
func LoadWorld(path string) (*World, map[string]string, error) {
	idx, meta, err := colstore.Load(path)
	if err != nil {
		return nil, nil, err
	}
	return &World{idx: idx}, meta, nil
}

// Close releases the world's resources (the file mapping, when the index
// was loaded from disk). The world must not be queried afterwards.
func (w *World) Close() error {
	if w.idx != nil {
		return w.idx.Close()
	}
	return nil
}

// BuildCached returns the world for cfg, loading it from dir when a
// matching save exists and building-then-saving it otherwise. The cache
// key is the config fingerprint, so any change to scale, seed, window, or
// tail plan builds a distinct file. A corrupt or mismatched cache entry
// is rebuilt, never trusted.
func BuildCached(dir string, cfg WorldConfig) (*World, error) {
	cfg.fill()
	fp := cfg.Fingerprint()
	path := filepath.Join(dir, "world-"+fp+".rscw")
	idx, meta, err := colstore.Load(path)
	if err == nil {
		if meta["fingerprint"] == fp {
			cohorts, perr := planCohorts(cfg)
			if perr != nil {
				idx.Close()
				return nil, perr
			}
			return &World{Config: cfg, Cohorts: cohorts, idx: idx}, nil
		}
		idx.Close() // stale key scheme or hash collision: rebuild
	} else if !errors.Is(err, fs.ErrNotExist) {
		// A corrupt cache file is not fatal — rebuild and overwrite it.
		fmt.Fprintf(os.Stderr, "tldsim: ignoring unreadable world cache %s: %v\n", path, err)
	}
	w, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := w.Save(path); err != nil {
		return nil, err
	}
	return w, nil
}
