package tldsim

import (
	"bytes"
	"context"
	"math"
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// testWorld builds a reduced-scale world once per test binary. It uses
// the legacy materialized build so it doubles as the equivalence oracle:
// the statistical assertions run against []DomainState, and the streaming
// path is held equal to it by the equivalence tests in
// world_stream_test.go.
var testWorldCache *World

func testWorld(t *testing.T) *World {
	t.Helper()
	if testWorldCache == nil {
		w, err := BuildLegacy(WorldConfig{Scale: 1.0 / 250, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		testWorldCache = w
	}
	return testWorldCache
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
	}
}

// inGTLD restricts analyses to .com/.net/.org, as Figure 3 does.
func inGTLD(r *dataset.Record) bool {
	return r.TLD == "com" || r.TLD == "net" || r.TLD == "org"
}

func TestTable1PopulationAndKeyPercentages(t *testing.T) {
	w := testWorld(t)
	snap := w.SnapshotAt(simtime.End)
	rows := analysis.Overview(snap, AllTLDs)
	wantDomains := map[string]int{"com": 472589, "net": 55096, "org": 38731, "nl": 22697, "se": 5553}
	for _, row := range rows {
		want := wantDomains[row.TLD]
		if math.Abs(float64(row.Domains-want)) > float64(want)/100+20 {
			t.Errorf(".%s population %d, want ~%d", row.TLD, row.Domains, want)
		}
		tol := 0.2 // ±0.2pp for the small gTLD percentages
		if TLDKeyPct[row.TLD] > 10 {
			tol = 3 // ±3pp for .nl/.se
		}
		within(t, "."+row.TLD+" %DNSKEY", row.PctDNSKEY, TLDKeyPct[row.TLD], tol)
	}
}

func TestFigure3OperatorConcentration(t *testing.T) {
	w := testWorld(t)
	snap := w.SnapshotAt(simtime.End)

	all := analysis.OperatorCDF(snap, inGTLD)
	partial := analysis.OperatorCDF(snap, analysis.And(inGTLD, analysis.PartiallyDeployed))
	full := analysis.OperatorCDF(snap, analysis.And(inGTLD, analysis.FullyDeployed))

	// The paper: tens of operators to cover half of all domains, but only
	// ~4 for partial and ~2 for fully deployed — the concentration finding.
	nAll := analysis.OperatorsToCover(all, 0.5)
	if nAll < 10 || nAll > 45 {
		t.Errorf("operators to cover 50%% of all domains = %d, want tens", nAll)
	}
	nPartial := analysis.OperatorsToCover(partial, 0.5)
	if nPartial < 2 || nPartial > 7 {
		t.Errorf("operators to cover 50%% of partial = %d, want ~4", nPartial)
	}
	nFull := analysis.OperatorsToCover(full, 0.5)
	if nFull < 1 || nFull > 4 {
		t.Errorf("operators to cover 50%% of full = %d, want ~2", nFull)
	}
	if nAll <= nPartial || nPartial < nFull {
		t.Errorf("concentration ordering violated: all=%d partial=%d full=%d", nAll, nPartial, nFull)
	}
	// ~10^4 operators on the x-axis.
	if len(all) < 5000 {
		t.Errorf("operator population %d, want thousands", len(all))
	}
	// The top fully-deployed operators are OVH and DomainNameShop, and the
	// overlap between the top-25 overall and top-25 full is small.
	if full[0].Operator != "ovh.net" {
		t.Errorf("top full operator = %s, want ovh.net", full[0].Operator)
	}
	// The paper found an overlap of only 3 between the top-25 overall and
	// the top-25 fully deployed. Our synthetic tail is thinner than the
	// real mid-market, which lets a few 2-3-domain named operators sneak
	// into the full top-25; the qualitative claim is a SMALL overlap.
	overlap := analysis.TopOverlap(all, full, 25)
	if overlap > 8 {
		t.Errorf("top-25 overlap = %d, paper found ~3", overlap)
	}
}

func TestFigure4OVHvsGoDaddy(t *testing.T) {
	w := testWorld(t)
	ovh := w.SeriesFor("ovh.net", "", simtime.GTLDStart, simtime.End, 30)
	gd := w.SeriesFor("domaincontrol.com", "", simtime.GTLDStart, simtime.End, 30)
	ovhStart, ovhEnd := ovh[0].PctFull(), ovh[len(ovh)-1].PctFull()
	within(t, "OVH full%% at start", ovhStart, 18.3, 2.5)
	within(t, "OVH full%% at end", ovhEnd, 25.9, 2.5)
	if ovhEnd <= ovhStart {
		t.Error("OVH adoption did not grow")
	}
	gdEnd := gd[len(gd)-1].PctFull()
	within(t, "GoDaddy full%% at end", gdEnd, 0.02, 0.02)
	// Monotone growth for OVH (sampled monthly).
	for i := 1; i < len(ovh); i++ {
		if ovh[i].Full < ovh[i-1].Full {
			t.Errorf("OVH series decreased at %v", ovh[i].Day)
		}
	}
}

func TestFigure5LoopiaKPNPartialByTLD(t *testing.T) {
	w := testWorld(t)
	// Loopia: .se essentially fully deployed, gTLDs signed but DS-less.
	se := w.SeriesFor("loopia.se", "se", simtime.SEStart, simtime.End, 30)
	within(t, "Loopia .se full%%", se[len(se)-1].PctFull(), 93, 4)
	com := w.SeriesFor("loopia.se", "com", simtime.GTLDStart, simtime.End, 60)
	last := com[len(com)-1]
	if last.PctFull() > 1 {
		t.Errorf("Loopia .com full%% = %.2f, want ~0", last.PctFull())
	}
	if last.PctDNSKEY() < 90 {
		t.Errorf("Loopia .com DNSKEY%% = %.2f, want >90 (signed but partial)", last.PctDNSKEY())
	}
	// KPN mirrors it for .nl.
	nl := w.SeriesFor("is.nl", "nl", simtime.NLStart, simtime.End, 30)
	within(t, "KPN .nl full%%", nl[len(nl)-1].PctFull(), 96, 4)
	kcom := w.SeriesFor("is.nl", "com", simtime.GTLDStart, simtime.End, 60)
	if kcom[len(kcom)-1].PctFull() > 1 {
		t.Errorf("KPN .com full%% = %.2f, want ~0", kcom[len(kcom)-1].PctFull())
	}
}

func TestFigure6AntagonistBinero(t *testing.T) {
	w := testWorld(t)
	// Antagonist: gradual renewal-driven ramp in the gTLDs to ~52.7%.
	ant := w.SeriesFor("webhostingserver.nl", "com", simtime.GTLDStart, simtime.End, 30)
	first, last := ant[0], ant[len(ant)-1]
	within(t, "Antagonist .com full%% at end", last.PctFull(), 52.7, 10)
	if first.PctFull() > 45 {
		t.Errorf("Antagonist ramp missing: already %.1f%% at window start", first.PctFull())
	}
	// The ramp completes within a year of the switch: flat afterwards.
	mid := ant[len(ant)/2]
	if mid.PctFull() < 40 {
		t.Errorf("Antagonist ramp too slow: %.1f%% at mid-window", mid.PctFull())
	}
	// .nl stays high throughout.
	nl := w.SeriesFor("webhostingserver.nl", "nl", simtime.NLStart, simtime.End, 60)
	within(t, "Antagonist .nl full%%", nl[len(nl)-1].PctFull(), 95.4, 4)

	// Binero: .se high, gTLDs ~37.8%, both roughly flat.
	se := w.SeriesFor("binero.se", "se", simtime.SEStart, simtime.End, 60)
	within(t, "Binero .se full%%", se[len(se)-1].PctFull(), 92.9, 4)
	com := w.SeriesFor("binero.se", "com", simtime.GTLDStart, simtime.End, 60)
	within(t, "Binero .com full%%", com[len(com)-1].PctFull(), 37.8, 4)
}

func TestFigure7PCExtremeStepAndTransIP(t *testing.T) {
	w := testWorld(t)
	pcx := w.SeriesFor("pcextreme.nl", "com", simtime.GTLDStart-20, simtime.End, 1)
	at := func(day simtime.Day) analysis.SeriesPoint {
		return pcx[int(day-(simtime.GTLDStart-20))]
	}
	before := at(pcxStepDay - 2)
	after := at(pcxStepDay + 15)
	if before.PctFull() > 2 {
		t.Errorf("PCExtreme before step: %.2f%%, want ~0.44%%", before.PctFull())
	}
	if after.PctFull() < 90 {
		t.Errorf("PCExtreme after step: %.2f%%, want ~97-98%%", after.PctFull())
	}
	// The jump completes within ~10 days.
	if jump := after.PctFull() - before.PctFull(); jump < 85 {
		t.Errorf("step jump only %.1f points", jump)
	}
	within(t, "PCExtreme end full%%", pcx[len(pcx)-1].PctFull(), 97.0, 3)

	// TransIP: near-total where it is the registrar...
	com := w.SeriesFor("transip.net", "com", simtime.GTLDStart, simtime.End, 60)
	within(t, "TransIP .com full%%", com[len(com)-1].PctFull(), 97, 3)
	// ...but only ~48.4% for .se, where the KeySystems partnership gates
	// DS uploads, ramping only after enablement.
	se := w.SeriesFor("transip.net", "se", simtime.SEStart, simtime.End, 10)
	within(t, "TransIP .se full%% at end", se[len(se)-1].PctFull(), 48.4, 9)
	preEnable := w.SeriesFor("transip.net", "se", keySystemsDSDay-30, keySystemsDSDay-1, 29)
	if preEnable[0].PctFull() > 2 {
		t.Errorf("TransIP .se full before KeySystems enablement: %.1f%%", preEnable[0].PctFull())
	}
}

func TestFigure8CloudflareDSGap(t *testing.T) {
	w := testWorld(t)
	cf := w.SeriesFor("cloudflare.com", "", simtime.GTLDStart, simtime.End, 10)
	// Nothing before the universal DNSSEC launch.
	for _, p := range cf {
		if p.Day < simtime.CloudflareUniversalDNSSEC && p.WithDNSKEY > 0 {
			t.Errorf("Cloudflare DNSKEYs before launch at %v", p.Day)
			break
		}
	}
	last := cf[len(cf)-1]
	within(t, "Cloudflare %%DNSKEY at end", last.PctDNSKEY(), 1.9, 0.3)
	// The stagnant gap: ~39.3% of DNSKEY domains never get a DS.
	within(t, "Cloudflare DS|DNSKEY at end", last.PctDSGivenDNSKEY(), 60.7, 9)
	// The gap is stagnant from early on (paper: "remarkably stagnant").
	for _, p := range cf {
		// Only judge stagnation once the keyed population is large enough
		// for the ratio to be statistically meaningful at this scale.
		if p.Day > simtime.CloudflareUniversalDNSSEC+90 && p.WithDNSKEY > 80 {
			if gap := p.PctDSGivenDNSKEY(); math.Abs(gap-60.7) > 12 {
				t.Errorf("DS gap at %v = %.1f%%, want stagnant ~60%%", p.Day, gap)
			}
		}
	}
}

func TestSection52RegistrarShares(t *testing.T) {
	w := testWorld(t)
	snap := w.SnapshotAt(simtime.End)
	fullPct := func(op string) float64 {
		total, full := 0, 0
		for i := range snap.Records {
			r := &snap.Records[i]
			if r.Operator != op || !inGTLD(r) {
				continue
			}
			total++
			if r.Deployment() == dnssec.DeploymentFull {
				full++
			}
		}
		if total == 0 {
			return 0
		}
		return 100 * float64(full) / float64(total)
	}
	// §5.2: OVH 25.9%, NameCheap 0.59%, GoDaddy 0.02%.
	within(t, "OVH share", fullPct("ovh.net"), 25.9, 3)
	within(t, "NameCheap share", fullPct("registrar-servers.com"), 0.59, 0.3)
	within(t, "GoDaddy share", fullPct("domaincontrol.com"), 0.02, 0.03)
}

func TestMaterializedScanMatchesModel(t *testing.T) {
	w := testWorld(t)
	sample := w.Sample(300, 7)
	mat, err := Materialize(simtime.End, sample)
	if err != nil {
		t.Fatal(err)
	}
	scanner, err := scan.New(scan.Config{
		Exchange:   mat.Net,
		TLDServers: mat.TLDServers,
		Workers:    8,
		Clock:      func() simtime.Day { return simtime.End },
	})
	if err != nil {
		t.Fatal(err)
	}
	var targets []scan.Target
	for _, d := range sample {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	snap, health, err := scanner.ScanDay(context.Background(), simtime.End, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != len(sample) {
		t.Fatalf("scanned %d of %d", len(snap.Records), len(sample))
	}
	if !health.Complete() || health.Measured != len(sample) {
		t.Fatalf("unhealthy sweep over a clean network: %s", health)
	}
	// Every scanned record must classify exactly as the model predicts:
	// live measurement over real signed zones agrees with the state model.
	modelByName := make(map[string]dnssec.Deployment, len(sample))
	for i := range sample {
		rec := sample[i].RecordAt(simtime.End)
		modelByName[sample[i].Name] = rec.Deployment()
	}
	for i := range snap.Records {
		r := &snap.Records[i]
		if want := modelByName[r.Domain]; r.Deployment() != want {
			t.Errorf("%s: scanned %v, model %v", r.Domain, r.Deployment(), want)
		}
		if r.Operator == "" {
			t.Errorf("%s: no operator grouped", r.Domain)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	worldBytes := func(seed int64) []byte {
		t.Helper()
		w, err := Build(WorldConfig{Scale: 1.0 / 50000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := w.Index().Save(&buf, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := worldBytes(9), worldBytes(9)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different serialized worlds")
	}
	if c := worldBytes(10); bytes.Equal(a, c) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestRegistrarAggregations(t *testing.T) {
	w := testWorld(t)
	byReg := w.DomainsByRegistrar("com", "net", "org")
	if byReg["GoDaddy"] < 30000 {
		t.Errorf("GoDaddy gTLD domains: %d", byReg["GoDaddy"])
	}
	keys := w.DNSKEYDomainsByRegistrar(simtime.End, "com", "net", "org")
	// OVH ~372, Loopia ~132, TransIP ~138 at scale 1/1000.
	within(t, "OVH DNSKEY count", float64(keys["OVH"]), 372*4, 150)
	within(t, "Loopia DNSKEY count", float64(keys["Loopia"]), 132*4, 80)
	if ops := OperatorsOf("OVH"); len(ops) != 2 {
		t.Errorf("OVH operators: %v", ops)
	}
}

func TestExpiredSignaturesScannedAsBroken(t *testing.T) {
	// A cohort serving lapsed RRSIGs must be measured as broken both by the
	// state model and by a live scan over genuinely expired signatures.
	w, err := BuildCustom(WorldConfig{Scale: 1, Seed: 5}, []Cohort{{
		Registrar: "Stale", Operator: "stale-host.example", TLD: "com",
		Domains: 30, Key: Flat(1), DS: DSSpec{Mode: DSWithKey}, ExpiredSigFrac: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.SnapshotAt(simtime.End)
	for i := range snap.Records {
		if snap.Records[i].Deployment() != dnssec.DeploymentBroken {
			t.Fatalf("model: %s is %v, want broken", snap.Records[i].Domain, snap.Records[i].Deployment())
		}
	}
	domains := w.AllDomains()
	mat, err := Materialize(simtime.End, domains)
	if err != nil {
		t.Fatal(err)
	}
	scanner, err := scan.New(scan.Config{
		Exchange: mat.Net, TLDServers: mat.TLDServers, Workers: 4,
		Clock: func() simtime.Day { return simtime.End },
	})
	if err != nil {
		t.Fatal(err)
	}
	var targets []scan.Target
	for _, d := range domains {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	live, _, err := scanner.ScanDay(context.Background(), simtime.End, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Records) != 30 {
		t.Fatalf("scanned %d", len(live.Records))
	}
	for i := range live.Records {
		r := &live.Records[i]
		if !r.HasRRSIG {
			t.Errorf("%s: expired RRSIGs should still be served", r.Domain)
		}
		if r.Deployment() != dnssec.DeploymentBroken {
			t.Errorf("live scan: %s is %v, want broken (expired signature)", r.Domain, r.Deployment())
		}
	}
}

func TestSection1DSGapHeadline(t *testing.T) {
	// Section 1: "nearly 30% of .com, .net, and .org domains do not
	// properly upload DS records even though they have DNSKEYs and RRSIGs."
	w := testWorld(t)
	snap := w.SnapshotAt(simtime.End)
	gap := analysis.DSGapPct(snap, inGTLD)
	within(t, "gTLD DS gap among DNSKEY domains", gap, 30, 8)
	// The ccTLDs, under incentive auditing, have a far smaller gap.
	nlGap := analysis.DSGapPct(snap, analysis.InTLD("nl"))
	if nlGap >= gap/2 {
		t.Errorf(".nl DS gap %.1f%% should be far below the gTLD gap %.1f%%", nlGap, gap)
	}
}
