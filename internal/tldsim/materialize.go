package tldsim

import (
	"fmt"
	"math/rand"
	"net/netip"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Materialized is a day of the simulated world turned into real, signed DNS
// served on an in-memory network: a root zone, one signed TLD zone per TLD
// with genuine NS/DS delegations, and one authoritative server per DNS
// operator with genuinely signed (or unsigned, or mismatched) child zones.
//
// The scan engine runs against this exactly as it would against production
// servers, which lets tests verify that the world model's aggregate counts
// equal what live measurement observes.
type Materialized struct {
	Net        *dnsserver.MemNet
	Anchor     []*dnswire.DS
	TLDServers map[string]string
	Day        simtime.Day
}

// Materialize builds real DNS state for the given domains as of day. Only
// pass the domains you intend to scan — materialization does real key
// generation and signing per signed domain.
func Materialize(day simtime.Day, domains []DomainState) (*Materialized, error) {
	now := day.Time()
	expire := now.AddDate(2, 0, 0)
	net := dnsserver.NewMemNet()
	net.Strict = true
	m := &Materialized{Net: net, TLDServers: make(map[string]string), Day: day}

	newSigner := func() (*zone.Signer, error) {
		s, err := zone.NewSigner(dnswire.AlgED25519, now)
		if err != nil {
			return nil, err
		}
		s.Expiration = expire
		return s, nil
	}

	// Root and TLD skeletons.
	rootZone := zone.New("")
	rootZone.MustAdd(dnswire.NewRR("", 86400, &dnswire.SOA{
		MName: "a.root-servers.net", RName: "nstld.verisign-grs.com",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}))
	rootZone.MustAdd(dnswire.NewRR("", 86400, &dnswire.NS{Host: "a.root-servers.net"}))
	rootSigner, err := newSigner()
	if err != nil {
		return nil, err
	}

	tldZones := make(map[string]*zone.Zone)
	tldSigners := make(map[string]*zone.Signer)
	tldOf := func(tld string) (*zone.Zone, *zone.Signer, error) {
		if z, ok := tldZones[tld]; ok {
			return z, tldSigners[tld], nil
		}
		ns := tldServerName(tld)
		z := zone.New(tld)
		z.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.SOA{
			MName: ns, RName: "hostmaster." + ns,
			Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 3600,
		}))
		z.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.NS{Host: ns}))
		signer, err := newSigner()
		if err != nil {
			return nil, nil, err
		}
		if err := signer.Sign(z); err != nil {
			return nil, nil, err
		}
		tldZones[tld], tldSigners[tld] = z, signer
		srv := dnsserver.NewAuthoritative()
		srv.AddZone(z)
		net.Register(ns, srv)
		m.TLDServers[tld] = ns
		// Delegate in the root.
		rootZone.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.NS{Host: ns}))
		dss, err := signer.DSRecords(tld, dnswire.DigestSHA256)
		if err != nil {
			return nil, nil, err
		}
		for _, ds := range dss {
			rootZone.MustAdd(dnswire.NewRR(tld, 86400, ds))
		}
		return z, signer, nil
	}

	operatorSrvs := make(map[string]*dnsserver.Authoritative)
	opSrv := func(host string) *dnsserver.Authoritative {
		if srv, ok := operatorSrvs[host]; ok {
			return srv
		}
		srv := dnsserver.NewAuthoritative()
		operatorSrvs[host] = srv
		net.Register(host, srv)
		return srv
	}

	for i := range domains {
		d := &domains[i]
		tz, tsigner, err := tldOf(d.TLD)
		if err != nil {
			return nil, err
		}
		nsHost := nsFor(d.Operator)
		child := zone.New(d.Name)
		child.MustAdd(dnswire.NewRR(d.Name, 3600, &dnswire.SOA{
			MName: nsHost, RName: "hostmaster." + d.Name,
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
		}))
		child.MustAdd(dnswire.NewRR(d.Name, 3600, &dnswire.NS{Host: nsHost}))
		child.MustAdd(dnswire.NewRR("www."+d.Name, 300, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")}))

		hasKey := d.KeyDay <= day
		hasDS := d.DSDay <= day
		var childSigner *zone.Signer
		if hasKey {
			if childSigner, err = newSigner(); err != nil {
				return nil, err
			}
			if d.ExpiredSig {
				// The operator let its signatures lapse: the served RRSIGs
				// ended a month before the measurement day.
				childSigner.Inception = now.AddDate(0, -3, 0)
				childSigner.Expiration = now.AddDate(0, -1, 0)
			}
			if err := childSigner.Sign(child); err != nil {
				return nil, err
			}
		}
		tz.MustAdd(dnswire.NewRR(d.Name, 86400, &dnswire.NS{Host: nsHost}))
		if hasDS {
			var ds []*dnswire.DS
			if d.BrokenDS || childSigner == nil {
				// A DS that matches nothing served: either the registrar
				// accepted garbage, or the zone was unsigned behind it.
				digest := make([]byte, 32)
				rand.New(rand.NewSource(int64(i))).Read(digest)
				ds = []*dnswire.DS{{
					KeyTag: uint16(i + 1), Algorithm: dnswire.AlgED25519,
					DigestType: dnswire.DigestSHA256, Digest: digest,
				}}
			} else {
				if ds, err = childSigner.DSRecords(d.Name, dnswire.DigestSHA256); err != nil {
					return nil, err
				}
			}
			for _, rec := range ds {
				tz.MustAdd(dnswire.NewRR(d.Name, 86400, rec))
			}
			if err := tsigner.SignSet(tz, d.Name, dnswire.TypeDS); err != nil {
				return nil, err
			}
		}
		opSrv(nsHost).AddZone(child)
	}

	if err := rootSigner.Sign(rootZone); err != nil {
		return nil, err
	}
	rootSrv := dnsserver.NewAuthoritative()
	rootSrv.AddZone(rootZone)
	net.Register("a.root-servers.net", rootSrv)
	anchor, err := rootSigner.DSRecords("", dnswire.DigestSHA256)
	if err != nil {
		return nil, err
	}
	m.Anchor = anchor
	return m, nil
}

// tldServerName is the deterministic authoritative-server name for a TLD
// registry. Chunked materializations rely on it: every chunk of a day
// rebuilds the TLD zone but addresses it by the same name, so one
// TLDServers map is valid for the whole day.
func tldServerName(tld string) string { return "ns1." + tld + "-registry.example" }

// Sample materializes n deterministically (seeded) sampled domains as a
// slice. It is the test/ablation form: at population scale the slice
// itself is the memory problem, so production sweeps hold the cursor from
// SampleSource instead and never materialize the draw.
func (w *World) Sample(n int, seed int64) []DomainState {
	return Domains(w.SampleSource(n, seed))
}

// BuildAgents constructs live registrar agents for the whole catalogue on
// top of an existing registry substrate, wiring reseller partnerships. It
// returns the agents keyed by policy ID together with the probe-ordered
// lists for Tables 2 and 3.
func BuildAgents(registries map[string]*registry.Registry, net *dnsserver.MemNet, clock func() simtime.Day) (byID map[string]*registrar.Registrar, top20, top10 []*registrar.Registrar, err error) {
	specs := RegistrarSpecs()
	byID = make(map[string]*registrar.Registrar, len(specs))
	for _, spec := range specs {
		p := spec.Policy
		// Only wire roles for TLDs the substrate actually has.
		roles := make(map[string]registrar.Role, len(p.Roles))
		for tld, role := range p.Roles {
			if role.Kind == registrar.RoleRegistrar {
				if _, ok := registries[tld]; !ok {
					continue
				}
			}
			roles[tld] = role
		}
		p.Roles = roles
		agent, aerr := registrar.New(p, registrar.Deps{
			Registries: registries,
			Net:        net,
			Clock:      clock,
			Rng:        rand.New(rand.NewSource(int64(len(p.ID)) * 2654435761)),
		})
		if aerr != nil {
			return nil, nil, nil, fmt.Errorf("tldsim: building %s: %w", p.Name, aerr)
		}
		byID[p.ID] = agent
	}
	// Partner wiring pass.
	for _, spec := range specs {
		agent := byID[spec.Policy.ID]
		for tld, role := range spec.Policy.Roles {
			if role.Kind == registrar.RoleReseller {
				partner, ok := byID[role.Partner]
				if !ok {
					return nil, nil, nil, fmt.Errorf("tldsim: %s names unknown partner %s", spec.Policy.ID, role.Partner)
				}
				agent.SetPartner(tld, partner)
			}
		}
	}
	for _, spec := range specs {
		if spec.Top20 {
			top20 = append(top20, byID[spec.Policy.ID])
		}
		if spec.Top10DNSSEC {
			top10 = append(top10, byID[spec.Policy.ID])
		}
	}
	return byID, top20, top10, nil
}
