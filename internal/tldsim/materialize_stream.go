package tldsim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/simtime"
)

// The streaming materialization layer: at full-population scale a day's
// signed DNS does not fit in RAM any more than its target list does, so
// sweeps materialize one chunk of the cursor at a time. Determinism makes
// this safe — every domain's zone content is a pure function of its
// DomainState and the day, and TLD/root server names are fixed by
// tldServerName — so a chunked materialization answers every query about
// its chunk's domains exactly as the whole-day materialization would.

// DomainSource is a random-access cursor over a domain population. It
// deliberately includes Target so any DomainSource structurally satisfies
// scan.TargetSource without importing the scan package.
type DomainSource interface {
	// Len is the population size.
	Len() int
	// DomainAt projects domain i as a DomainState (a copy).
	DomainAt(i int) DomainState
	// Target returns domain i's name and TLD without a full projection.
	Target(i int) (domain, tld string)
}

// Target returns domain i's name and TLD — the cheap cursor accessor that
// skips the full DomainState gather on streaming worlds.
func (w *World) Target(i int) (domain, tld string) {
	if w.Domains != nil {
		d := &w.Domains[i]
		return d.Name, d.TLD
	}
	return w.Index().Target(i)
}

// TLDs lists the distinct TLDs present in the population, in index-interning
// order.
func (w *World) TLDs() []string { return w.Index().TLDs() }

var _ DomainSource = (*World)(nil)

// sampleSource is a seeded subset view over a world: position i maps to
// world position idx[i]. It keeps only the index permutation in memory —
// the draw itself is never materialized.
type sampleSource struct {
	w   *World
	idx []int
}

func (s *sampleSource) Len() int                   { return len(s.idx) }
func (s *sampleSource) DomainAt(i int) DomainState { return s.w.DomainAt(s.idx[i]) }
func (s *sampleSource) Target(i int) (string, string) {
	return s.w.Target(s.idx[i])
}

// TLDs delegates to the backing world. The sample may touch fewer TLDs
// than the world; the superset is harmless — consumers use it to size
// per-TLD server tables, and extra entries simply go unqueried.
func (s *sampleSource) TLDs() []string { return s.w.TLDs() }

// SampleSource returns a cursor over n deterministically (seeded) sampled
// domains. It draws the identical permutation Sample draws — same seed,
// same domains in the same order — but holds only []int for the draw, so
// a full-population sweep costs index space, not DomainState space.
func (w *World) SampleSource(n int, seed int64) DomainSource {
	if n >= w.Len() {
		return w
	}
	rng := rand.New(rand.NewSource(seed))
	// Clone the drawn prefix: slicing Perm's result would retain the full
	// world-sized backing array for the life of the cursor.
	idx := append([]int(nil), rng.Perm(w.Len())[:n]...)
	return &sampleSource{w: w, idx: idx}
}

// Domains materializes a cursor as a slice — the bridge back to the
// slice-shaped APIs for tests and small worlds.
func Domains(src DomainSource) []DomainState {
	out := make([]DomainState, 0, src.Len())
	for i := 0; i < src.Len(); i++ {
		out = append(out, src.DomainAt(i))
	}
	return out
}

// CollectDomains materializes the cursor span [lo, hi) into dst (reused if
// it has capacity). Intended for chunk-sized spans only.
func CollectDomains(src DomainSource, lo, hi int, dst []DomainState) []DomainState {
	dst = dst[:0]
	for i := lo; i < hi; i++ {
		dst = append(dst, src.DomainAt(i))
	}
	return dst
}

// tldLister is the optional fast path for enumerating a cursor's TLDs
// without a full pass (worlds and sample views implement it).
type tldLister interface{ TLDs() []string }

// StreamMaterializer materializes one chunk of a domain cursor at a time:
// Prepare(ctx, lo, hi) rebuilds the served world for just that span, and
// Exchange routes queries to the current chunk's network. Signing and
// key-generation cost — the dominant cost of materialization — scales with
// the chunk size instead of the day's population.
//
// The TLD server table is computed once up front (server names are a pure
// function of the TLD), so scanner configuration is chunk-independent.
type StreamMaterializer struct {
	day simtime.Day
	src DomainSource
	// TLDServers maps each TLD in the population to its registry server
	// name — the same table a whole-day Materialize would produce.
	TLDServers map[string]string

	cur atomic.Pointer[dnsserver.MemNet]
	buf []DomainState
}

// NewStreamMaterializer builds a chunked materializer for one day over the
// cursor. The TLD table is derived from the cursor's TLDs() fast path when
// available, else from one cheap name/TLD pass over the cursor.
func NewStreamMaterializer(day simtime.Day, src DomainSource) *StreamMaterializer {
	m := &StreamMaterializer{day: day, src: src, TLDServers: make(map[string]string)}
	if tl, ok := src.(tldLister); ok {
		for _, tld := range tl.TLDs() {
			m.TLDServers[tld] = tldServerName(tld)
		}
		return m
	}
	for i := 0; i < src.Len(); i++ {
		_, tld := src.Target(i)
		if _, ok := m.TLDServers[tld]; !ok {
			m.TLDServers[tld] = tldServerName(tld)
		}
	}
	return m
}

// Day returns the materialized measurement day.
func (m *StreamMaterializer) Day() simtime.Day { return m.day }

// Prepare materializes the cursor span [lo, hi): real signed zones for
// just those domains, served on a fresh in-memory network that replaces
// the previous chunk's. It is the scan.ChunkPrepare for this cursor.
func (m *StreamMaterializer) Prepare(ctx context.Context, lo, hi int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.buf = CollectDomains(m.src, lo, hi, m.buf)
	mat, err := Materialize(m.day, m.buf)
	if err != nil {
		return fmt.Errorf("tldsim: materializing chunk [%d,%d): %w", lo, hi, err)
	}
	m.cur.Store(mat.Net)
	return nil
}

// Exchange routes a query to the currently-prepared chunk's network. It is
// the scanner's Exchange transport: fault middleware stacks above it
// exactly as it stacks above a whole-day Materialized.Net, and faultnet's
// per-question fault hashing depends only on (seed, server, question,
// attempt) — never on which chunk served the answer — so chunked scans see
// the identical fault pattern a whole-day scan would. Querying before the
// first Prepare is an error.
func (m *StreamMaterializer) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	net := m.cur.Load()
	if net == nil {
		return nil, fmt.Errorf("tldsim: StreamMaterializer queried before Prepare")
	}
	return net.Exchange(ctx, server, q)
}

// LossyOperatorsSource is LossyOperators over a cursor: it walks the
// population once to collect distinct operators, then makes the identical
// seeded selection. A slice-backed cursor yields exactly the rules
// LossyOperators yields for the slice.
func LossyOperatorsSource(src DomainSource, frac, loss float64, seed int64) ([]faultnet.Rule, []string) {
	seen := map[string]bool{}
	var operators []string
	for i := 0; i < src.Len(); i++ {
		d := src.DomainAt(i)
		if !seen[d.Operator] {
			seen[d.Operator] = true
			operators = append(operators, d.Operator)
		}
	}
	return lossyFromOperators(operators, frac, loss, seed)
}

// lossyFromOperators applies the seeded selection shared by both fault
// pickers: sort, shuffle, take frac, emit one loss rule per chosen
// operator's nameserver.
func lossyFromOperators(operators []string, frac, loss float64, seed int64) ([]faultnet.Rule, []string) {
	sort.Strings(operators)
	n := int(float64(len(operators)) * frac)
	if n > len(operators) {
		n = len(operators)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(operators), func(i, j int) {
		operators[i], operators[j] = operators[j], operators[i]
	})
	chosen := append([]string(nil), operators[:n]...)
	sort.Strings(chosen)
	rules := make([]faultnet.Rule, 0, n)
	for _, op := range chosen {
		rules = append(rules, faultnet.Rule{Pattern: nsFor(op), Loss: loss})
	}
	return rules, chosen
}
