package tldsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// randomWorld fabricates a world directly from random DomainStates,
// covering state combinations the cohort machinery never produces (DS
// without DNSKEY, broken+expired, Never in every slot).
func randomWorld(rng *rand.Rand, n int) *World {
	tlds := []string{"com", "net", "org", "nl", "se"}
	ops := make([]string, 1+rng.Intn(10))
	for i := range ops {
		ops[i] = fmt.Sprintf("equiv-op%02d.example", i)
	}
	day := func() simtime.Day {
		if rng.Intn(4) == 0 {
			return simtime.Never
		}
		return simtime.Day(rng.Intn(900) - 100)
	}
	w := &World{}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		reg := ""
		if rng.Intn(2) == 0 {
			reg = "Registrar-" + op
		}
		w.Domains = append(w.Domains, DomainState{
			Name:       fmt.Sprintf("e%05d.%s", i, tlds[rng.Intn(len(tlds))]),
			TLD:        tlds[rng.Intn(len(tlds))],
			Operator:   op,
			Registrar:  reg,
			KeyDay:     day(),
			DSDay:      day(),
			BrokenDS:   rng.Intn(7) == 0,
			ExpiredSig: rng.Intn(7) == 0,
		})
	}
	return w
}

// equivWorlds yields the property-test population: the shared calibrated
// world plus a batch of small adversarial random ones.
func equivWorlds(t *testing.T, rng *rand.Rand) []*World {
	worlds := []*World{testWorld(t)}
	for i := 0; i < 8; i++ {
		worlds = append(worlds, randomWorld(rng, rng.Intn(500)))
	}
	return worlds
}

func TestColstoreSeriesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for wi, w := range equivWorlds(t, rng) {
		for trial := 0; trial < 25; trial++ {
			operator := "no-such-operator.example"
			if len(w.Domains) > 0 && rng.Intn(5) > 0 {
				operator = w.Domains[rng.Intn(len(w.Domains))].Operator
			}
			tld := ""
			switch rng.Intn(3) {
			case 1:
				tld = AllTLDs[rng.Intn(len(AllTLDs))]
			case 2:
				tld = "nosuchtld"
			}
			from := simtime.Day(rng.Intn(1100) - 300)
			to := from + simtime.Day(rng.Intn(600)-60)
			step := rng.Intn(45) - 5
			got := w.SeriesFor(operator, tld, from, to, step)
			want := w.SeriesForLegacy(operator, tld, from, to, step)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("world %d trial %d: series diverges for op=%s tld=%q [%v,%v] step %d",
					wi, trial, operator, tld, from, to, step)
			}
		}
	}
}

func TestColstoreSnapshotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for wi, w := range equivWorlds(t, rng) {
		days := []simtime.Day{
			simtime.GTLDStart, simtime.End, simtime.Never,
			simtime.Day(rng.Intn(900) - 100),
			simtime.Day(rng.Intn(900) - 100),
		}
		for _, day := range days {
			got := w.SnapshotAt(day)
			want := w.SnapshotAtLegacy(day)
			if len(got.Records) != len(want.Records) {
				t.Fatalf("world %d day %v: %d vs %d records", wi, day, len(got.Records), len(want.Records))
			}
			for i := range want.Records {
				if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
					t.Fatalf("world %d day %v record %d:\ncolstore %+v\nlegacy   %+v",
						wi, day, i, got.Records[i], want.Records[i])
				}
			}
		}
	}
}

func TestColstoreCDFAndOverviewEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	classes := []struct {
		c Class
		f analysis.Filter
	}{
		{colstore.ClassAny, analysis.All},
		{colstore.ClassDNSKEY, analysis.WithDNSKEY},
		{colstore.ClassPartial, analysis.PartiallyDeployed},
		{colstore.ClassFull, analysis.FullyDeployed},
	}
	for wi, w := range equivWorlds(t, rng) {
		day := simtime.Day(rng.Intn(800))
		snap := w.SnapshotAtLegacy(day)
		for _, tlds := range [][]string{nil, GTLDs, {"se"}} {
			tf := analysis.All
			if tlds != nil {
				set := map[string]bool{}
				for _, t := range tlds {
					set[t] = true
				}
				tf = func(r *dataset.Record) bool { return set[r.TLD] }
			}
			for _, cl := range classes {
				got := w.Index().OperatorCDF(day, cl.c, tlds...)
				want := analysis.OperatorCDF(snap, analysis.And(tf, cl.f))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("world %d day %v tlds %v: CDF diverges from analysis oracle", wi, day, tlds)
				}
			}
		}
		gotOv := w.Index().Overview(day, AllTLDs)
		wantOv := analysis.Overview(snap, AllTLDs)
		if !reflect.DeepEqual(gotOv, wantOv) {
			t.Fatalf("world %d day %v: overview diverges\ngot  %v\nwant %v", wi, day, gotOv, wantOv)
		}
	}
}

// Class aliases colstore.Class for the table above.
type Class = colstore.Class

func TestColstoreRegistrarTallyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for wi, w := range equivWorlds(t, rng) {
		for _, tlds := range [][]string{nil, GTLDs, {"nl", "se"}} {
			legacyAll := map[string]int{}
			legacyKeyed := map[string]int{}
			want := map[string]bool{}
			for _, t := range tlds {
				want[t] = true
			}
			for i := range w.Domains {
				d := &w.Domains[i]
				if d.Registrar == "" || (len(want) > 0 && !want[d.TLD]) {
					continue
				}
				legacyAll[d.Registrar]++
				if d.KeyDay <= simtime.End {
					legacyKeyed[d.Registrar]++
				}
			}
			if got := w.DomainsByRegistrar(tlds...); !reflect.DeepEqual(got, legacyAll) {
				t.Fatalf("world %d tlds %v: DomainsByRegistrar diverges", wi, tlds)
			}
			if got := w.DNSKEYDomainsByRegistrar(simtime.End, tlds...); !reflect.DeepEqual(got, legacyKeyed) {
				t.Fatalf("world %d tlds %v: DNSKEYDomainsByRegistrar diverges", wi, tlds)
			}
		}
	}
}

// TestWorldSnapshotAllocs is the alloc-regression guard on the interned
// snapshot path: the legacy projection allocated an NS-host slice (plus
// the "ns1."+op concatenation) per record per day; the columnar path must
// stay O(1) allocations per snapshot.
func TestWorldSnapshotAllocs(t *testing.T) {
	w := testWorld(t)
	w.Index() // build outside the measured region
	allocs := testing.AllocsPerRun(5, func() {
		if snap := w.SnapshotAt(simtime.End); len(snap.Records) == 0 {
			t.Fatal("empty snapshot")
		}
	})
	if allocs > 4 {
		t.Errorf("SnapshotAt allocates %.1f objects per call, want <= 4 (was O(records) before colstore)", allocs)
	}
	// The bulk projection primitive must not allocate the NS-host slice:
	// one shared slice per operator per world, zero allocations per
	// projection.
	d := &w.Domains[0]
	w.recordAt(d, simtime.End) // intern the operator outside the measured region
	recAllocs := testing.AllocsPerRun(100, func() {
		r := w.recordAt(d, simtime.End)
		if r.Domain == "" {
			t.Fatal("bad record")
		}
	})
	if recAllocs > 0 {
		t.Errorf("recordAt allocates %.1f objects per call, want 0", recAllocs)
	}
}
