package tldsim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/simtime"
)

// TestStreamingBuildWorkerInvariance is the core determinism property of
// the sharded pipeline: serial, 2-worker, and 8-worker streaming builds
// of the same seed must serialize to byte-identical world files.
func TestStreamingBuildWorkerInvariance(t *testing.T) {
	cfg := WorldConfig{Scale: 1.0 / 5000, Seed: 1234}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.Workers = workers
		w, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := w.Index().Save(&buf, map[string]string{"fingerprint": c.Fingerprint()}); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("%d-worker build serialized differently from the serial build (%d vs %d bytes)",
				workers, len(buf.Bytes()), len(want))
		}
	}
}

// TestStreamingMatchesLegacy holds the streaming build equal to the
// materialized oracle, domain for domain and query for query.
func TestStreamingMatchesLegacy(t *testing.T) {
	cfg := WorldConfig{Scale: 1.0 / 2000, Seed: 77}
	stream, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := BuildLegacy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Len() != legacy.Len() {
		t.Fatalf("population sizes differ: streaming %d, legacy %d", stream.Len(), legacy.Len())
	}
	for i := 0; i < stream.Len(); i++ {
		if s, l := stream.DomainAt(i), legacy.DomainAt(i); s != l {
			t.Fatalf("domain %d differs:\nstreaming %+v\nlegacy    %+v", i, s, l)
		}
	}
	for _, day := range []simtime.Day{simtime.GTLDStart, simtime.End} {
		got := stream.SnapshotAt(day)
		want := legacy.SnapshotAt(day)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SnapshotAt(%v) diverges between build paths", day)
		}
		gotOv := analysis.Overview(got, AllTLDs)
		wantOv := analysis.Overview(want, AllTLDs)
		if !reflect.DeepEqual(gotOv, wantOv) {
			t.Fatalf("Overview(%v) diverges: %v vs %v", day, gotOv, wantOv)
		}
	}
	for _, op := range []string{"ovh.net", "cloudflare.com", "tail0000.com-hosting.example"} {
		got := stream.SeriesFor(op, "", simtime.GTLDStart, simtime.End, 30)
		want := legacy.SeriesFor(op, "", simtime.GTLDStart, simtime.End, 30)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SeriesFor(%s) diverges between build paths", op)
		}
	}
	// Samples must coincide too: the sweep pipeline scans identical
	// domains whichever path built the world.
	if !reflect.DeepEqual(stream.Sample(200, 7), legacy.Sample(200, 7)) {
		t.Fatal("Sample diverges between build paths")
	}
}

// TestWorldSaveLoadRoundTrip drives the full persistence cycle: a saved
// world re-loads with every query result intact, through both the mmap
// and the copying loader.
func TestWorldSaveLoadRoundTrip(t *testing.T) {
	cfg := WorldConfig{Scale: 1.0 / 5000, Seed: 5}
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.rscw")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadWorld(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if meta["fingerprint"] != cfg.Fingerprint() {
		t.Errorf("fingerprint %q, want %q", meta["fingerprint"], cfg.Fingerprint())
	}
	if loaded.Len() != w.Len() {
		t.Fatalf("loaded %d domains, want %d", loaded.Len(), w.Len())
	}
	for _, i := range []int{0, 1, w.Len() / 2, w.Len() - 1} {
		if got, want := loaded.DomainAt(i), w.DomainAt(i); got != want {
			t.Fatalf("domain %d differs after round trip:\nloaded %+v\nbuilt  %+v", i, got, want)
		}
	}
	if !reflect.DeepEqual(loaded.SnapshotAt(simtime.End), w.SnapshotAt(simtime.End)) {
		t.Fatal("snapshot diverges after round trip")
	}
	series := func(w *World) []analysis.SeriesPoint {
		return w.SeriesFor("ovh.net", "", simtime.GTLDStart, simtime.End, 30)
	}
	if !reflect.DeepEqual(series(loaded), series(w)) {
		t.Fatal("series diverges after round trip")
	}
	if !reflect.DeepEqual(loaded.DomainsByRegistrar(GTLDs...), w.DomainsByRegistrar(GTLDs...)) {
		t.Fatal("registrar tally diverges after round trip")
	}
}

// TestBuildCached exercises the build-once/load-many path: a second call
// with the same config must hit the cache file, and a different seed must
// build a different file.
func TestBuildCached(t *testing.T) {
	dir := t.TempDir()
	cfg := WorldConfig{Scale: 1.0 / 5000, Seed: 8}
	a, err := BuildCached(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "world-*.rscw"))
	if len(files) != 1 {
		t.Fatalf("cache holds %d files after first build, want 1: %v", len(files), files)
	}
	info1, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCached(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	info2, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !info2.ModTime().Equal(info1.ModTime()) || info2.Size() != info1.Size() {
		t.Error("second BuildCached rewrote the cache file instead of loading it")
	}
	if a.Len() != b.Len() {
		t.Fatalf("cached world has %d domains, built world %d", b.Len(), a.Len())
	}
	if !reflect.DeepEqual(a.SnapshotAt(simtime.End), b.SnapshotAt(simtime.End)) {
		t.Fatal("cached world snapshot diverges from built world")
	}
	// Scenario derivation needs cohorts, which BuildCached re-plans.
	if len(b.Cohorts) == 0 {
		t.Error("cached world has no cohorts")
	}

	other := cfg
	other.Seed = 9
	if _, err := BuildCached(dir, other); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "world-*.rscw"))
	if len(files) != 2 {
		t.Fatalf("cache holds %d files after second seed, want 2", len(files))
	}

	// A corrupt cache entry is rebuilt, not trusted.
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := BuildCached(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != a.Len() {
		t.Fatalf("rebuild after corruption has %d domains, want %d", c.Len(), a.Len())
	}
}

// TestWorkersExcludedFromFingerprint: worker count must not change the
// cache key, because it does not change the world.
func TestWorkersExcludedFromFingerprint(t *testing.T) {
	a := WorldConfig{Scale: 1.0 / 5000, Seed: 3, Workers: 1}
	b := WorldConfig{Scale: 1.0 / 5000, Seed: 3, Workers: 8}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("worker count changed the config fingerprint")
	}
	c := WorldConfig{Scale: 1.0 / 5000, Seed: 4}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("seed change did not change the config fingerprint")
	}
}
