package tldsim

import (
	"context"
	"testing"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/probe"
	"securepki.org/registrarsec/internal/registrar"
)

// buildProbeWorld wires the catalogue's registrar agents onto a live
// registry substrate.
func buildProbeWorld(t *testing.T) (*dnstest.Ecosystem, map[string]*registrar.Registrar, []*registrar.Registrar, []*registrar.Registrar) {
	t.Helper()
	eco, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	byID, top20, top10, err := BuildAgents(eco.Registries, eco.Net, eco.Clock.Day)
	if err != nil {
		t.Fatal(err)
	}
	return eco, byID, top20, top10
}

func TestCatalogSizes(t *testing.T) {
	_, byID, top20, top10 := buildProbeWorld(t)
	if len(top20) != 20 {
		t.Errorf("top-20 list has %d registrars", len(top20))
	}
	if len(top10) != 10 { // Table 3: 12 nameserver domains of 10 registrars
		t.Errorf("top-10 list has %d registrars", len(top10))
	}
	for _, id := range []string{"godaddy", "ovh", "namecheap", "loopia", "pcextreme", "ascio", "openprovider", "keysystems"} {
		if byID[id] == nil {
			t.Errorf("catalogue missing %s", id)
		}
	}
}

// TestTable2HeadlineNumbers probes the top-20 registrars and checks the
// section 5 findings:
//   - only three support DNSSEC when they are the DNS operator
//     (NameCheap by default on some plans, OVH opt-in, GoDaddy paid);
//   - 11 of 20 support DNSSEC with the owner as DNS operator;
//   - three of those channels are email;
//   - only two registrars validate uploaded DS records;
//   - at least one email registrar accepts a forged sender.
func TestTable2HeadlineNumbers(t *testing.T) {
	eco, _, top20, _ := buildProbeWorld(t)
	p := probe.New(&probe.Env{
		Net: eco.Net, Registries: eco.Registries, Anchor: eco.Anchor, Clock: eco.Clock.Day,
	})
	obs := p.RunAll(context.Background(), top20)
	s := probe.Summarize(obs)

	if s.HostedSupport != 3 {
		t.Errorf("hosted DNSSEC support = %d registrars, paper found 3", s.HostedSupport)
	}
	if s.HostedDefault != 1 {
		t.Errorf("hosted DNSSEC by default = %d, paper found 1 (NameCheap, some plans)", s.HostedDefault)
	}
	if s.HostedPaid != 1 {
		t.Errorf("hosted DNSSEC paid = %d, paper found 1 (GoDaddy)", s.HostedPaid)
	}
	if s.OwnerSupport != 11 {
		t.Errorf("owner-as-operator support = %d, paper found 11", s.OwnerSupport)
	}
	if s.EmailChannel != 3 {
		t.Errorf("email channels = %d, paper found 3 (eNom, NameBright, DreamHost)", s.EmailChannel)
	}
	if s.ValidateDS != 2 {
		t.Errorf("DS-validating registrars = %d, paper found 2 (OVH, DreamHost)", s.ValidateDS)
	}
	if s.ForgedEmailOK < 1 {
		t.Errorf("no registrar accepted the forged email; paper found some did")
	}
	// Per-registrar spot checks.
	byName := map[string]*probe.Observation{}
	for _, o := range obs {
		byName[o.Registrar] = o
	}
	if o := byName["GoDaddy"]; !o.HostedNeededFee {
		t.Error("GoDaddy fee not discovered")
	}
	if o := byName["NameCheap"]; !o.HostedPlanGated {
		t.Error("NameCheap plan gating not discovered")
	}
	if o := byName["Amazon"]; !o.AcceptsDNSKEY {
		t.Error("Amazon DNSKEY upload not discovered")
	}
	if o := byName["123-reg"]; o.ChannelUsed != channel.Ticket {
		t.Errorf("123-reg channel = %v, want ticket", o.ChannelUsed)
	}
	if o := byName["HostGator"]; o.OwnerSupported && o.ChannelUsed != channel.Chat {
		t.Errorf("HostGator channel = %v, want chat", o.ChannelUsed)
	}
	if o := byName["NameBright"]; o.RejectsForgedEmail != probe.ObservedNo {
		t.Errorf("NameBright forged email = %v, want accepted", o.RejectsForgedEmail)
	}
	if o := byName["eNom"]; o.RejectsForgedEmail != probe.ObservedYes {
		t.Errorf("eNom forged email = %v, want rejected (code check)", o.RejectsForgedEmail)
	}
}

// TestTable3HeadlineNumbers probes the DNSSEC-heavy registrars: most sign
// by default, several only publish DS for some TLDs, 8 of 10 support
// owner-operated DNSSEC, and only OVH and PCExtreme validate.
func TestTable3HeadlineNumbers(t *testing.T) {
	eco, byID, _, top10 := buildProbeWorld(t)
	p := probe.New(&probe.Env{
		Net: eco.Net, Registries: eco.Registries, Anchor: eco.Anchor, Clock: eco.Clock.Day,
	})
	// Table 3 covers ten registrars: the eight Table-3-only ones plus OVH
	// and NameCheap from the top-20 list.
	_ = byID
	regs := append([]*registrar.Registrar{}, top10...)
	if len(regs) != 10 {
		t.Fatalf("Table 3 population = %d registrars", len(regs))
	}
	obs := p.RunAll(context.Background(), regs)
	s := probe.Summarize(obs)
	if s.HostedSupport != 10 {
		t.Errorf("hosted support = %d of 10", s.HostedSupport)
	}
	// Paper: 9 of 10 sign by default (OVH is the opt-in exception;
	// NameCheap only on premium plans).
	if s.HostedDefault != 9 {
		t.Errorf("hosted by default = %d, paper found 9", s.HostedDefault)
	}
	if s.OwnerSupport != 8 {
		t.Errorf("owner support = %d of 10, paper found 8", s.OwnerSupport)
	}
	if s.ValidateDS != 2 {
		t.Errorf("validating registrars = %d, paper found 2 (OVH, PCExtreme)", s.ValidateDS)
	}

	byName := map[string]*probe.Observation{}
	for _, o := range obs {
		byName[o.Registrar] = o
	}
	// Partial-DS registrars: hosted .com domains stay partial.
	for _, name := range []string{"Loopia", "MeshDigital", "KPN"} {
		o := byName[name]
		if o.HostedUploadsDS {
			t.Errorf("%s uploaded a DS for .com; paper found partial deployment", name)
		}
	}
	if o := byName["PCExtreme"]; !o.FetchesDNSKEY {
		t.Error("PCExtreme fetch flow not discovered")
	}
	if o := byName["KPN"]; o.OwnerSupported {
		t.Error("KPN owner support misreported")
	}
	if o := byName["Antagonist"]; o.OwnerSupported {
		t.Error("Antagonist owner support misreported (intentionally absent)")
	}
	// Binero accepted a DS from a different address (section 6.4).
	if o := byName["Binero"]; o.RejectsForgedEmail != probe.ObservedNo {
		t.Errorf("Binero forged email = %v, want accepted", o.RejectsForgedEmail)
	}
	// Loopia verifies email via the account code.
	if o := byName["Loopia"]; o.RejectsForgedEmail != probe.ObservedYes {
		t.Errorf("Loopia forged email = %v, want rejected", o.RejectsForgedEmail)
	}
}

// TestTable4Survey checks the registrar/reseller matrix against Table 4.
func TestTable4Survey(t *testing.T) {
	_, byID, _, _ := buildProbeWorld(t)
	regs := []*registrar.Registrar{
		byID["ovh"], byID["godaddy"], byID["meshdigital"], byID["domainnameshop"],
		byID["transip"], byID["namecheap"], byID["binero"], byID["pcextreme"],
		byID["antagonist"], byID["loopia"], byID["kpn"],
	}
	byIDName := map[string]*registrar.Registrar{}
	for id, r := range byID {
		byIDName[id] = r
	}
	rows := probe.Survey(regs, byIDName, AllTLDs)
	get := func(name, tld string) string {
		for _, row := range rows {
			if row.Registrar == name {
				return row.PerTLD[tld]
			}
		}
		return "?"
	}
	cases := []struct{ reg, tld, want string }{
		{"OVH", "com", "OVH"},
		{"OVH", "se", "OVH"},
		{"GoDaddy", "nl", "GoDaddy"},
		{"TransIP", "nl", "TransIP"},
		{"TransIP", "se", "Key Systems"},
		{"NameCheap", "org", "eNom"},
		{"NameCheap", "nl", "no support"},
		{"PCExtreme", "com", "Open Provider"},
		{"PCExtreme", "nl", "PCExtreme"},
		{"Antagonist", "org", "Open Provider"},
		{"Loopia", "com", "Ascio"},
		{"Loopia", "se", "Loopia"},
		{"KPN", "com", "Ascio"},
		{"KPN", "nl", "KPN"},
		{"KPN", "se", "Open Provider"},
		{"MeshDigital", "se", "no support"},
		{"Binero", "nl", "no support"},
	}
	for _, c := range cases {
		if got := get(c.reg, c.tld); got != c.want {
			t.Errorf("Table 4 %s/.%s = %q, want %q", c.reg, c.tld, got, c.want)
		}
	}
}
