package tldsim

import (
	"context"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/simtime"
)

func streamTestWorld(t *testing.T) *World {
	t.Helper()
	w, err := Build(WorldConfig{Scale: 1.0 / 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSampleSourceMatchesSample(t *testing.T) {
	w := streamTestWorld(t)
	for _, n := range []int{1, 10, 500, w.Len(), w.Len() + 100} {
		src := w.SampleSource(n, 42)
		want := w.Sample(n, 42)
		if src.Len() != len(want) {
			t.Fatalf("n=%d: SampleSource.Len() = %d, Sample returned %d", n, src.Len(), len(want))
		}
		for i := range want {
			if got := src.DomainAt(i); !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("n=%d: DomainAt(%d) = %+v, Sample[%d] = %+v", n, i, got, i, want[i])
			}
			d, tld := src.Target(i)
			if d != want[i].Name || tld != want[i].TLD {
				t.Fatalf("n=%d: Target(%d) = (%s, %s), want (%s, %s)", n, i, d, tld, want[i].Name, want[i].TLD)
			}
		}
	}
}

func TestWorldTargetMatchesDomainAt(t *testing.T) {
	w := streamTestWorld(t)
	for i := 0; i < w.Len(); i += 97 {
		d := w.DomainAt(i)
		name, tld := w.Target(i)
		if name != d.Name || tld != d.TLD {
			t.Fatalf("Target(%d) = (%s, %s), DomainAt = (%s, %s)", i, name, tld, d.Name, d.TLD)
		}
	}
	// Legacy worlds (materialized Domains) must agree too.
	lw := &World{Domains: w.AllDomains()}
	for i := 0; i < lw.Len(); i += 97 {
		d := lw.Domains[i]
		name, tld := lw.Target(i)
		if name != d.Name || tld != d.TLD {
			t.Fatalf("legacy Target(%d) = (%s, %s), want (%s, %s)", i, name, tld, d.Name, d.TLD)
		}
	}
}

func TestLossyOperatorsSourceMatchesSlice(t *testing.T) {
	w := streamTestWorld(t)
	src := w.SampleSource(400, 3)
	domains := Domains(src)
	wantRules, wantChosen := LossyOperators(domains, 0.25, 0.5, 99)
	gotRules, gotChosen := LossyOperatorsSource(src, 0.25, 0.5, 99)
	if !reflect.DeepEqual(gotChosen, wantChosen) {
		t.Fatalf("chosen operators differ:\n got %v\nwant %v", gotChosen, wantChosen)
	}
	if !reflect.DeepEqual(gotRules, wantRules) {
		t.Fatalf("rules differ:\n got %v\nwant %v", gotRules, wantRules)
	}
	if len(gotChosen) == 0 {
		t.Fatal("fault selection picked no operators; test world too small")
	}
}

// TestStreamMaterializerChunkAnswers verifies that a chunked
// materialization answers queries about its chunk's domains with the same
// DNSSEC-relevant shape the whole-day materialization produces: same
// rcode, same answer types per (name, qtype). Full record-level identity
// is impossible (each materialization generates fresh keys), but the
// measurement outcome per domain — which is what the scanner records —
// depends only on the answer shape.
func TestStreamMaterializerChunkAnswers(t *testing.T) {
	w := streamTestWorld(t)
	src := w.SampleSource(64, 5)
	day := simtime.End

	whole, err := Materialize(day, Domains(src))
	if err != nil {
		t.Fatal(err)
	}
	sm := NewStreamMaterializer(day, src)
	if len(sm.TLDServers) == 0 {
		t.Fatal("StreamMaterializer derived no TLD servers")
	}
	for tld, ns := range whole.TLDServers {
		if sm.TLDServers[tld] != ns {
			t.Fatalf("TLD %s: stream server %q, whole-day %q", tld, sm.TLDServers[tld], ns)
		}
	}

	ctx := context.Background()
	if _, err := sm.Exchange(ctx, "a.root-servers.net", dnswire.NewQuery(1, "com", dnswire.TypeNS)); err == nil {
		t.Fatal("Exchange before Prepare should error")
	}

	const chunk = 17
	for lo := 0; lo < src.Len(); lo += chunk {
		hi := lo + chunk
		if hi > src.Len() {
			hi = src.Len()
		}
		if err := sm.Prepare(ctx, lo, hi); err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			d := src.DomainAt(i)
			ns := sm.TLDServers[d.TLD]
			for _, qtype := range []dnswire.Type{dnswire.TypeDS, dnswire.TypeNS} {
				q := dnswire.NewQuery(1, d.Name, qtype)
				got, err := sm.Exchange(ctx, ns, q)
				if err != nil {
					t.Fatalf("chunk query %s %d: %v", d.Name, qtype, err)
				}
				want, err := whole.Net.Exchange(ctx, ns, dnswire.NewQuery(1, d.Name, qtype))
				if err != nil {
					t.Fatalf("whole-day query %s %d: %v", d.Name, qtype, err)
				}
				if got.RCode != want.RCode {
					t.Fatalf("%s qtype %d: chunk rcode %d, whole-day %d", d.Name, qtype, got.RCode, want.RCode)
				}
				if gc, wc := typeCounts(got), typeCounts(want); !reflect.DeepEqual(gc, wc) {
					t.Fatalf("%s qtype %d: chunk answer types %v, whole-day %v", d.Name, qtype, gc, wc)
				}
			}
		}
	}
}

// typeCounts tallies answer-section record types — the shape the scanner's
// presence checks (has DS? has DNSKEY? has RRSIG?) depend on.
func typeCounts(m *dnswire.Message) map[dnswire.Type]int {
	out := map[dnswire.Type]int{}
	for _, rr := range m.Answers {
		out[rr.Type]++
	}
	return out
}
