package tldsim

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// fastRetry is a retry policy with microsecond backoff so fault tests spend
// their time measuring, not sleeping.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

func scanTargets(sample []DomainState) []scan.Target {
	targets := make([]scan.Target, 0, len(sample))
	for _, d := range sample {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	return targets
}

func newScanner(t *testing.T, mat *Materialized, cfg scan.Config) *scan.Scanner {
	t.Helper()
	cfg.TLDServers = mat.TLDServers
	cfg.Workers = 8
	cfg.Clock = func() simtime.Day { return mat.Day }
	s, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// recordKey summarizes the classification-relevant fields of a record.
type recordKey struct {
	operator                             string
	hasKey, hasSig, hasDS, valid, failed bool
}

func classifications(snap *dataset.Snapshot) map[string]recordKey {
	out := make(map[string]recordKey, len(snap.Records))
	for i := range snap.Records {
		r := &snap.Records[i]
		out[r.Domain] = recordKey{
			operator: r.Operator,
			hasKey:   r.HasDNSKEY, hasSig: r.HasRRSIG, hasDS: r.HasDS,
			valid: r.ChainValid, failed: r.Failed,
		}
	}
	return out
}

// TestScanUnderFaultsMatchesCleanRun is the acceptance drill for the
// resilient scan path: 20% packet loss on half the DNS operators must cost
// retries, never records. Every domain classifies identically to a
// fault-free sweep, and the health report accounts for every injected
// fault: each one was either retried past or ended a failed exchange.
func TestScanUnderFaultsMatchesCleanRun(t *testing.T) {
	w := testWorld(t)
	sample := w.Sample(150, 9)
	mat, err := Materialize(simtime.End, sample)
	if err != nil {
		t.Fatal(err)
	}
	targets := scanTargets(sample)

	clean := newScanner(t, mat, scan.Config{Exchange: mat.Net})
	cleanSnap, cleanHealth, err := clean.ScanDay(context.Background(), simtime.End, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanHealth.Complete() || cleanHealth.Measured != len(targets) {
		t.Fatalf("clean baseline incomplete: %s", cleanHealth)
	}

	rules, flaky := LossyOperators(sample, 0.5, 0.2, 5)
	if len(flaky) == 0 || len(rules) != len(flaky) {
		t.Fatalf("lossy operator selection: %d rules for %d operators", len(rules), len(flaky))
	}
	inj := mat.FaultyExchanger(5, rules...)
	faulty := newScanner(t, mat, scan.Config{Exchange: inj, Retry: fastRetry(4)})
	snap, health, err := faulty.ScanDay(context.Background(), simtime.End, targets)
	if err != nil {
		t.Fatal(err)
	}

	// Every reachable domain measured, none silently dropped.
	if !health.Complete() {
		t.Fatalf("faulty sweep incomplete: %s", health)
	}
	if health.Measured != len(targets) || health.Targets != len(targets) {
		t.Fatalf("measured %d of %d targets: %s", health.Measured, len(targets), health)
	}

	// Identical classification, domain by domain.
	want := classifications(cleanSnap)
	got := classifications(snap)
	if len(got) != len(want) {
		t.Fatalf("record count: %d vs clean %d", len(got), len(want))
	}
	for domain, w := range want {
		if g, ok := got[domain]; !ok {
			t.Errorf("%s missing from faulty sweep", domain)
		} else if g != w {
			t.Errorf("%s classified %+v under faults, %+v clean", domain, g, w)
		}
	}

	// The injector did interfere, and the health report accounts for every
	// single injected fault: a loss either triggered a retry or ended a
	// failed exchange — nothing vanished.
	if inj.Total() == 0 {
		t.Fatal("no faults injected; the drill exercised nothing")
	}
	if health.Retries+health.FailedExchanges != inj.Total() {
		t.Errorf("accounting: %d retries + %d failed exchanges != %d injected faults",
			health.Retries, health.FailedExchanges, inj.Total())
	}
	stats := inj.Stats()
	if len(stats) != 1 || stats[faultnet.ClassLoss] != inj.Total() {
		t.Errorf("injected classes %v, want loss only", stats)
	}
}

// TestOperatorOutageSurfacesAsFailedRecords puts one operator's nameserver
// into a scheduled dark window covering the measurement day: its domains
// must come back as Failed placeholder records with a timeout class —
// itemized in the health report, not silently missing — while every other
// domain still measures.
func TestOperatorOutageSurfacesAsFailedRecords(t *testing.T) {
	w := testWorld(t)
	sample := w.Sample(80, 3)
	mat, err := Materialize(simtime.End, sample)
	if err != nil {
		t.Fatal(err)
	}
	dark := sample[0].Operator
	darkDomains := map[string]bool{}
	for _, d := range sample {
		if d.Operator == dark {
			darkDomains[d.Name] = true
		}
	}
	inj := mat.FaultyExchanger(1, OperatorOutage(dark, simtime.End-1, simtime.End+1))
	scanner := newScanner(t, mat, scan.Config{Exchange: inj, Retry: fastRetry(2)})
	snap, health, err := scanner.ScanDay(context.Background(), simtime.End, scanTargets(sample))
	if err != nil {
		t.Fatal(err)
	}

	if health.Complete() {
		t.Fatal("outage went unnoticed: health reports a complete sweep")
	}
	if len(health.Failures) != len(darkDomains) {
		t.Fatalf("%d failures, want %d (operator %s domains): %s",
			len(health.Failures), len(darkDomains), dark, health)
	}
	for _, f := range health.Failures {
		if !darkDomains[f.Target.Domain] {
			t.Errorf("unexpected failure outside the dark operator: %+v", f)
		}
		if f.Class != scan.FailTimeout || f.Stage != "dnskey" {
			t.Errorf("failure %s: class=%s stage=%s, want timeout at dnskey", f.Target.Domain, f.Class, f.Stage)
		}
	}
	if health.ByClass[scan.FailTimeout] != len(darkDomains) {
		t.Errorf("ByClass[timeout] = %d, want %d", health.ByClass[scan.FailTimeout], len(darkDomains))
	}
	if health.Measured != len(sample)-len(darkDomains) {
		t.Errorf("measured %d, want %d", health.Measured, len(sample)-len(darkDomains))
	}

	// The snapshot carries the gap markers: one Failed record per dark
	// domain, and analysis-facing code can filter them via Measured().
	if len(snap.Records) != len(sample) {
		t.Fatalf("snapshot has %d records, want %d (failed placeholders included)", len(snap.Records), len(sample))
	}
	if snap.MeasuredCount() != len(sample)-len(darkDomains) {
		t.Errorf("MeasuredCount = %d, want %d", snap.MeasuredCount(), len(sample)-len(darkDomains))
	}
	for i := range snap.Records {
		r := &snap.Records[i]
		if darkDomains[r.Domain] != r.Failed {
			t.Errorf("%s: Failed=%v, dark=%v", r.Domain, r.Failed, darkDomains[r.Domain])
		}
		if r.Failed && r.FailReason != string(scan.FailTimeout) {
			t.Errorf("%s: FailReason=%q", r.Domain, r.FailReason)
		}
	}
}
