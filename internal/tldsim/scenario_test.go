package tldsim

import (
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/simtime"
)

// scenarioKeyPct builds a scenario world and returns the end-of-window
// gTLD %DNSKEY and %full.
func scenarioKeyPct(t *testing.T, s Scenario) (keyPct, fullPct float64) {
	t.Helper()
	w, err := BuildScenario(s, WorldConfig{Scale: 1.0 / 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.SnapshotAt(simtime.End)
	total, keyed, full := 0, 0, 0
	for i := range snap.Records {
		r := &snap.Records[i]
		if !inGTLD(r) {
			continue
		}
		total++
		if r.HasDNSKEY {
			keyed++
		}
		if analysis.FullyDeployed(r) {
			full++
		}
	}
	return 100 * float64(keyed) / float64(total), 100 * float64(full) / float64(total)
}

func TestScenarioProjections(t *testing.T) {
	baseKey, baseFull := scenarioKeyPct(t, Baseline)
	within(t, "baseline gTLD %DNSKEY", baseKey, 0.73, 0.25)

	// Recommendation 1: DNSSEC by default at the top-20 moves gTLD
	// adoption from under 1% to nearly half the market (the top-20's
	// combined hosting share × 95% completion) within a renewal cycle.
	defKey, defFull := scenarioKeyPct(t, DefaultDNSSEC)
	if defKey < 40 {
		t.Errorf("registrars-default: %%DNSKEY = %.1f, expected ~46", defKey)
	}
	if defKey < 40*baseKey {
		t.Errorf("registrars-default: %%DNSKEY = %.1f only %.0fx baseline", defKey, defKey/baseKey)
	}
	if defFull < 38 {
		t.Errorf("registrars-default: %%full = %.1f", defFull)
	}

	// Recommendations 2-3: universal CDS does not create new signers, but
	// erases the partial class — full catches up to DNSKEY.
	cdsKey, cdsFull := scenarioKeyPct(t, UniversalCDS)
	within(t, "universal-cds %DNSKEY", cdsKey, baseKey, 0.3)
	if gap := cdsKey - cdsFull; gap > 0.12 {
		t.Errorf("universal-cds left a DS gap of %.2f points", gap)
	}
	if cdsFull <= baseFull {
		t.Errorf("universal-cds full %.2f did not improve on baseline %.2f", cdsFull, baseFull)
	}

	// Recommendation 4: gTLD incentives push the market toward ccTLD-like
	// adoption.
	incKey, incFull := scenarioKeyPct(t, GTLDIncentives)
	if incKey < 20 {
		t.Errorf("gtld-incentives: %%DNSKEY = %.1f, expected tens of percent", incKey)
	}
	if incFull < 0.9*incKey-5 {
		t.Errorf("gtld-incentives: full %.1f lags DNSKEY %.1f despite audited uploads", incFull, incKey)
	}
	if Baseline.String() != "baseline" || DefaultDNSSEC.String() != "registrars-default" ||
		UniversalCDS.String() != "universal-cds" || GTLDIncentives.String() != "gtld-incentives" {
		t.Error("scenario names")
	}
}
