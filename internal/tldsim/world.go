package tldsim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// WorldConfig parameterizes world generation.
type WorldConfig struct {
	// Scale multiplies every population (default 1/1000 — .com becomes
	// ~118k domains instead of 118M). Percentages are scale-invariant.
	Scale float64
	// Seed drives all sampling; same seed → same world.
	Seed int64
	// TailOperators is the number of anonymous tail operators per TLD
	// (defaults chosen so the total operator count is ~10^4, matching the
	// x-axis of Figure 3).
	TailOperators map[string]int
	// WindowStart/WindowEnd bound the measurement (defaults: the paper's).
	WindowStart, WindowEnd simtime.Day
	// Workers bounds the parallelism of the streaming build (0 = all
	// cores). The generated world is byte-identical for a given seed
	// regardless of this value, so it is excluded from the config
	// fingerprint.
	Workers int
}

func (c *WorldConfig) fill() {
	if c.Scale == 0 {
		c.Scale = 1.0 / 1000
	}
	if c.WindowStart == 0 {
		c.WindowStart = simtime.GTLDStart
	}
	if c.WindowEnd == 0 {
		c.WindowEnd = simtime.End
	}
	if c.TailOperators == nil {
		c.TailOperators = map[string]int{
			"com": 6000, "net": 1300, "org": 1100, "nl": 1000, "se": 600,
		}
	}
}

// DomainState is one simulated domain's full history, from which any day's
// DNS state follows.
type DomainState struct {
	Name      string
	TLD       string
	Operator  string
	Registrar string
	// Created is the registration day (may precede the window).
	Created simtime.Day
	// KeyDay is when DNSKEYs first appear (simtime.Never if never).
	KeyDay simtime.Day
	// DSDay is when the DS reaches the registry (simtime.Never if never).
	DSDay simtime.Day
	// BrokenDS marks a DS that matches no served key.
	BrokenDS bool
	// ExpiredSig marks a zone whose RRSIGs are past their validity window.
	ExpiredSig bool
}

// RecordAt projects the domain onto one measurement day. The NS-host
// slice is freshly allocated; bulk projections should go through
// World.recordAt, which interns one slice per operator per world.
func (d *DomainState) RecordAt(day simtime.Day) dataset.Record {
	return d.recordAt(day, []string{nsFor(d.Operator)})
}

func (d *DomainState) recordAt(day simtime.Day, nsHosts []string) dataset.Record {
	hasKey := d.KeyDay <= day
	hasDS := d.DSDay <= day
	return dataset.Record{
		Domain:     d.Name,
		TLD:        d.TLD,
		NSHosts:    nsHosts,
		Operator:   d.Operator,
		HasDNSKEY:  hasKey,
		HasRRSIG:   hasKey,
		HasDS:      hasDS,
		ChainValid: hasKey && hasDS && !d.BrokenDS && !d.ExpiredSig,
	}
}

// World is a generated ecosystem population. The canonical representation
// is the columnar index; the streaming build never materializes Domains.
// The legacy record-at-a-time path (BuildLegacy, Domains non-nil) is
// retained as the equivalence oracle at small scale.
type World struct {
	Config WorldConfig
	// Domains is the materialized population — only set by BuildLegacy
	// (and by tests that fabricate worlds directly). Streaming worlds
	// leave it nil and serve everything from the index.
	Domains []DomainState
	// Cohorts are the resolved (scaled) cohorts, named then tail.
	Cohorts []Cohort

	// idx is the columnar analytics index — set eagerly by the streaming
	// build (or a Load), lazily built from Domains for legacy worlds.
	// Every snapshot/series/aggregation query routes through it.
	idxOnce sync.Once
	idx     *colstore.Index

	// nsHosts interns the one-element NS-host slice per operator, scoped
	// to this world so slices never leak or cross-contaminate between
	// worlds in one process.
	nsMu    sync.Mutex
	nsHosts map[string][]string
}

// Index returns the world's columnar analytics engine. Streaming worlds
// carry it from construction; legacy worlds build it from Domains on
// first use, interning operators/TLDs/registrars into dense IDs.
func (w *World) Index() *colstore.Index {
	w.idxOnce.Do(func() {
		if w.idx != nil {
			return
		}
		b := colstore.NewBuilder(len(w.Domains))
		for i := range w.Domains {
			d := &w.Domains[i]
			b.Add(colstore.Domain{
				Name:       d.Name,
				TLD:        d.TLD,
				Operator:   d.Operator,
				Registrar:  d.Registrar,
				NSHost:     nsFor(d.Operator),
				Created:    d.Created,
				KeyDay:     d.KeyDay,
				DSDay:      d.DSDay,
				BrokenDS:   d.BrokenDS,
				ExpiredSig: d.ExpiredSig,
			})
		}
		w.idx = b.Build()
	})
	return w.idx
}

// Len returns the population size without materializing anything.
func (w *World) Len() int {
	if w.Domains != nil {
		return len(w.Domains)
	}
	return w.Index().Len()
}

// DomainAt projects one domain out of the population — a struct copy for
// legacy worlds, a column gather for streaming ones. Both build paths
// yield identical values at the same position for the same seed.
func (w *World) DomainAt(i int) DomainState {
	if w.Domains != nil {
		return w.Domains[i]
	}
	d := w.Index().Row(i)
	return DomainState{
		Name:       d.Name,
		TLD:        d.TLD,
		Operator:   d.Operator,
		Registrar:  d.Registrar,
		Created:    d.Created,
		KeyDay:     d.KeyDay,
		DSDay:      d.DSDay,
		BrokenDS:   d.BrokenDS,
		ExpiredSig: d.ExpiredSig,
	}
}

// AllDomains materializes the full population as DomainStates. Intended
// for small worlds (tests, ablations); at scale, iterate DomainAt or use
// the index directly.
func (w *World) AllDomains() []DomainState {
	if w.Domains != nil {
		return append([]DomainState(nil), w.Domains...)
	}
	n := w.Index().Len()
	out := make([]DomainState, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, w.DomainAt(i))
	}
	return out
}

// nsHostsFor interns the one-element NS-host slice per operator within
// this world. Callers must treat the returned slice as immutable.
func (w *World) nsHostsFor(operator string) []string {
	w.nsMu.Lock()
	defer w.nsMu.Unlock()
	if w.nsHosts == nil {
		w.nsHosts = make(map[string][]string)
	}
	v, ok := w.nsHosts[operator]
	if !ok {
		v = []string{nsFor(operator)}
		w.nsHosts[operator] = v
	}
	return v
}

// recordAt projects a domain onto one day with the per-world interned
// NS-host slice — the allocation-free bulk projection primitive.
func (w *World) recordAt(d *DomainState, day simtime.Day) dataset.Record {
	return d.recordAt(day, w.nsHostsFor(d.Operator))
}

// tailDSByTLD encodes how the anonymous tail handles DS records: gTLD tail
// operators upload DS for under half of their signed domains (the paper
// finds ~30% of DNSKEY domains lack DS, concentrated in a few operators,
// plus pervasive non-validation); .nl/.se tails are incentive-audited and
// mostly complete.
var tailDSByTLD = map[string]DSSpec{
	"com": {Mode: DSWithKey, Prob: 0.62, BrokenFrac: 0.05},
	"net": {Mode: DSWithKey, Prob: 0.62, BrokenFrac: 0.05},
	"org": {Mode: DSWithKey, Prob: 0.62, BrokenFrac: 0.05},
	"nl":  {Mode: DSWithKey, Prob: 0.95, BrokenFrac: 0.015},
	"se":  {Mode: DSWithKey, Prob: 0.94, BrokenFrac: 0.015},
}

// planCohorts resolves the full cohort list for a config: named cohorts
// from the catalogue plus a power-law tail per TLD calibrated so each TLD
// hits its Table 1 size and DNSKEY percentage. Deterministic and cheap —
// no per-domain sampling happens here.
func planCohorts(cfg WorldConfig) ([]Cohort, error) {
	named := NamedCohorts()
	// Scale the named cohorts and account per-TLD totals.
	namedDomains := make(map[string]int)    // tld -> scaled named population
	namedKeyEnd := make(map[string]float64) // tld -> expected DNSKEY count at window end
	var cohorts []Cohort
	for _, c := range named {
		c.Domains = int(math.Round(float64(c.Domains) * cfg.Scale))
		if c.Domains == 0 {
			continue
		}
		namedDomains[c.TLD] += c.Domains
		namedKeyEnd[c.TLD] += float64(c.Domains) * c.Key.EndFrac
		cohorts = append(cohorts, c)
	}

	// Tail per TLD: fill the population gap with power-law-sized anonymous
	// operators whose DNSKEY fraction closes the gap to the Table 1
	// percentage.
	for _, tld := range AllTLDs {
		total := int(math.Round(float64(TLDTotals[tld]) * cfg.Scale))
		tailTotal := total - namedDomains[tld]
		if tailTotal <= 0 {
			return nil, fmt.Errorf("tldsim: named cohorts exceed .%s population (%d > %d)", tld, namedDomains[tld], total)
		}
		targetKey := float64(total) * TLDKeyPct[tld] / 100
		tailKeyFrac := (targetKey - namedKeyEnd[tld]) / float64(tailTotal)
		if tailKeyFrac < 0 {
			tailKeyFrac = 0
		}
		if tailKeyFrac > 1 {
			tailKeyFrac = 1
		}
		sizes := powerLawSizes(cfg.TailOperators[tld], tailTotal)
		ds := tailDSByTLD[tld]
		for i, size := range sizes {
			if size == 0 {
				continue
			}
			cohorts = append(cohorts, Cohort{
				Operator: fmt.Sprintf("tail%04d.%s-hosting.example", i, tld),
				TLD:      tld,
				Domains:  size,
				// Tail adoption grows modestly across the window (the
				// paper: "rare ... but growing").
				Key: Linear(tailKeyFrac*0.8, tailKeyFrac),
				DS:  ds,
				// Small self-hosted operators let signatures lapse.
				ExpiredSigFrac: 0.03,
			})
		}
	}
	return cohorts, nil
}

// Build generates the world with the streaming columnar pipeline: cohorts
// are sampled in parallel into per-cohort column shards and merged into
// the canonical index without ever materializing []DomainState. The
// result is byte-identical for a given seed regardless of worker count.
func Build(cfg WorldConfig) (*World, error) {
	cfg.fill()
	cohorts, err := planCohorts(cfg)
	if err != nil {
		return nil, err
	}
	w := &World{Config: cfg, Cohorts: cohorts}
	w.idx = buildIndexStreaming(&cfg, cohorts, cfg.Seed, cfg.Workers)
	return w, nil
}

// BuildLegacy generates the same world as Build but materialized as
// []DomainState — the record-at-a-time equivalence oracle. Same seed,
// same population, domain for domain.
func BuildLegacy(cfg WorldConfig) (*World, error) {
	cfg.fill()
	cohorts, err := planCohorts(cfg)
	if err != nil {
		return nil, err
	}
	w := &World{Config: cfg}
	w.sampleCohorts(cfg.Seed, cohorts)
	return w, nil
}

// BuildCustom generates a streaming world from an explicit cohort list
// (no named catalogue, no tail) — for ablations and focused experiments.
func BuildCustom(cfg WorldConfig, cohorts []Cohort) (*World, error) {
	cfg.fill()
	scaled := make([]Cohort, 0, len(cohorts))
	for _, c := range cohorts {
		c.Domains = int(math.Round(float64(c.Domains) * cfg.Scale))
		if c.Domains > 0 {
			scaled = append(scaled, c)
		}
	}
	w := &World{Config: cfg, Cohorts: scaled}
	w.idx = buildIndexStreaming(&cfg, scaled, cfg.Seed, cfg.Workers)
	return w, nil
}

// cohortSeed derives cohort ci's independent RNG stream from the base
// seed via a splitmix64-style mix: adjacent cohorts get decorrelated
// streams, and each stream depends only on (base, ci) — not on which
// worker runs it or in what order — which is what makes the parallel
// build deterministic.
func cohortSeed(base int64, ci int) int64 {
	z := uint64(base) + uint64(ci+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// domainDraw is one domain's sampled history, before naming.
type domainDraw struct {
	created simtime.Day
	keyDay  simtime.Day
	dsDay   simtime.Day
	broken  bool
	expired bool
}

// drawDomain samples one domain's history from its cohort profile. The
// draw order (created, key, DS, expired) is the contract both build paths
// share: a cohort's RNG stream yields the same population either way.
func drawDomain(rng *rand.Rand, c *Cohort, cfg *WorldConfig) domainDraw {
	// Registrations spread over the three years before the window end;
	// most predate the window start.
	created := simtime.Day(rng.Intn(int(cfg.WindowStart)+700)) - 700
	keyDay := c.Key.sampleKeyDay(rng, created, cfg.WindowStart, cfg.WindowEnd)
	dsDay, broken := c.DS.sampleDS(rng, keyDay, created)
	expired := keyDay != simtime.Never && c.ExpiredSigFrac > 0 &&
		rng.Float64() < c.ExpiredSigFrac
	return domainDraw{created: created, keyDay: keyDay, dsDay: dsDay, broken: broken, expired: expired}
}

// domainName formats "d<idx, zero-padded to 7>-<slug>.<tld>" where suffix
// is the precomputed "-<slug>.<tld>" fragment. Equivalent to
// fmt.Sprintf("d%07d%s", idx, suffix) without the formatting overhead.
func domainName(idx int, suffix string) string {
	var digits [20]byte
	b := strconv.AppendInt(digits[:0], int64(idx), 10)
	pad := 7 - len(b)
	if pad < 0 {
		pad = 0
	}
	out := make([]byte, 0, 1+pad+len(b)+len(suffix))
	out = append(out, 'd')
	for i := 0; i < pad; i++ {
		out = append(out, '0')
	}
	out = append(out, b...)
	out = append(out, suffix...)
	return string(out)
}

// cohortSuffix is the per-cohort name fragment shared by every domain.
func cohortSuffix(c *Cohort) string {
	return "-" + slug(c.Operator) + "." + c.TLD
}

// shardChunkDomains is the target row count per generation shard. The
// power-law tail yields tens of thousands of cohorts of a handful of
// domains each; giving every one its own shard would make fixed per-shard
// overhead dominate the build at small scale. Instead contiguous cohorts
// are batched into chunks of roughly this many domains. The boundaries
// depend only on the cohort sizes — never on the worker count — so the
// chunking cannot perturb the byte-identity guarantee.
const shardChunkDomains = 4096

// buildIndexStreaming is the parallel sharded generation pipeline:
// contiguous cohorts are batched into column-shard chunks, filled by a
// worker pool, and merged in chunk order. Cohort ci always draws from
// cohortSeed(baseSeed, ci) and names its domains from the prefix-sum
// start index regardless of which chunk or worker it lands on, so the
// merged index — and its serialized bytes — are identical for any worker
// count, and identical domain-for-domain to the sequential legacy build.
func buildIndexStreaming(cfg *WorldConfig, cohorts []Cohort, baseSeed int64, workers int) *colstore.Index {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	starts := make([]int, len(cohorts)+1)
	for i := range cohorts {
		starts[i+1] = starts[i] + cohorts[i].Domains
	}
	// Chunk boundaries: close a chunk once it has accumulated the target
	// domain count. chunks[k]..chunks[k+1] is a half-open cohort range.
	chunks := []int{0}
	acc := 0
	for ci := range cohorts {
		acc += cohorts[ci].Domains
		if acc >= shardChunkDomains {
			chunks = append(chunks, ci+1)
			acc = 0
		}
	}
	if chunks[len(chunks)-1] != len(cohorts) {
		chunks = append(chunks, len(cohorts))
	}
	shards := make([]*colstore.Shard, len(chunks)-1)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				lo, hi := chunks[job], chunks[job+1]
				s := colstore.NewShard(starts[hi] - starts[lo])
				for ci := lo; ci < hi; ci++ {
					fillCohort(s, cfg, &cohorts[ci], cohortSeed(baseSeed, ci), starts[ci])
				}
				shards[job] = s
			}
		}()
	}
	for job := range shards {
		jobs <- job
	}
	close(jobs)
	wg.Wait()
	return colstore.MergeShards(shards)
}

// fillCohort samples one cohort into the shard from its own RNG stream.
func fillCohort(s *colstore.Shard, cfg *WorldConfig, c *Cohort, seed int64, nameStart int) {
	rng := rand.New(rand.NewSource(seed))
	suffix := cohortSuffix(c)
	ns := nsFor(c.Operator)
	for i := 0; i < c.Domains; i++ {
		dr := drawDomain(rng, c, cfg)
		s.Add(colstore.Domain{
			Name:       domainName(nameStart+i, suffix),
			TLD:        c.TLD,
			Operator:   c.Operator,
			Registrar:  c.Registrar,
			NSHost:     ns,
			Created:    dr.created,
			KeyDay:     dr.keyDay,
			DSDay:      dr.dsDay,
			BrokenDS:   dr.broken,
			ExpiredSig: dr.expired,
		})
	}
}

// sampleCohorts is the legacy sequential materializer: every domain's
// history lands in w.Domains. It draws from the same per-cohort RNG
// streams as the parallel build, so both paths realize the same world.
func (w *World) sampleCohorts(baseSeed int64, cohorts []Cohort) {
	cfg := w.Config
	w.Cohorts = cohorts
	total := 0
	for i := range cohorts {
		total += cohorts[i].Domains
	}
	w.Domains = make([]DomainState, 0, total)
	for ci := range cohorts {
		c := &cohorts[ci]
		rng := rand.New(rand.NewSource(cohortSeed(baseSeed, ci)))
		suffix := cohortSuffix(c)
		for i := 0; i < c.Domains; i++ {
			dr := drawDomain(rng, c, &cfg)
			w.Domains = append(w.Domains, DomainState{
				Name:       domainName(len(w.Domains), suffix),
				TLD:        c.TLD,
				Operator:   c.Operator,
				Registrar:  c.Registrar,
				Created:    dr.created,
				KeyDay:     dr.keyDay,
				DSDay:      dr.dsDay,
				BrokenDS:   dr.broken,
				ExpiredSig: dr.expired,
			})
		}
	}
}

// slug shortens an operator name into a domain-label-safe fragment.
func slug(operator string) string {
	out := make([]byte, 0, 12)
	for i := 0; i < len(operator) && len(out) < 12; i++ {
		ch := operator[i]
		if ch >= 'a' && ch <= 'z' || ch >= '0' && ch <= '9' {
			out = append(out, ch)
		}
	}
	return string(out)
}

// powerLawSizes distributes total domains over k operators with a power-law
// profile (exponent solved so the largest operator stays moderate), largest
// first. The distribution shape drives the long tail of Figure 3.
func powerLawSizes(k, total int) []int {
	if k <= 0 {
		k = 1
	}
	if k > total {
		k = total
	}
	// Find s such that sizes c*i^-s sum to the total with a head size of
	// about total/20 (keeps tail operators below the named ones).
	head := float64(total) / 20
	if head < 1 {
		head = 1
	}
	s := solveExponent(k, float64(total)/head)
	weights := make([]float64, k)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		sum += weights[i]
	}
	sizes := make([]int, k)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(total) * weights[i] / sum)
		assigned += sizes[i]
	}
	// Distribute the rounding remainder over the smallest operators so
	// everyone has at least one domain where possible.
	for i := 0; assigned < total; i = (i + 1) % k {
		sizes[k-1-i]++
		assigned++
	}
	return sizes
}

// solveExponent finds s with sum(i^-s)/1^-s == ratio via bisection: the
// ratio of total mass to head mass determines the tail flatness.
func solveExponent(k int, ratio float64) float64 {
	lo, hi := 0.0, 3.0
	f := func(s float64) float64 {
		sum := 0.0
		for i := 1; i <= k; i++ {
			sum += math.Pow(float64(i), -s)
		}
		return sum
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > ratio {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SnapshotAt projects the whole world onto one day through the columnar
// engine: a prebuilt record template is copied and only the day-dependent
// booleans are patched, with one shared NS-host slice per operator.
func (w *World) SnapshotAt(day simtime.Day) *dataset.Snapshot {
	return w.Index().Snapshot(day)
}

// SnapshotAtLegacy is the original record-at-a-time projection, retained
// as the reference oracle for the columnar engine: equivalence tests
// assert SnapshotAt output is identical, and regsec-bench measures the
// speedup against it.
func (w *World) SnapshotAtLegacy(day simtime.Day) *dataset.Snapshot {
	n := w.Len()
	snap := &dataset.Snapshot{Day: day, Records: make([]dataset.Record, 0, n)}
	if w.Domains != nil {
		for i := range w.Domains {
			snap.Records = append(snap.Records, w.recordAt(&w.Domains[i], day))
		}
		return snap
	}
	for i := 0; i < n; i++ {
		d := w.DomainAt(i)
		snap.Records = append(snap.Records, w.recordAt(&d, day))
	}
	return snap
}

// SeriesFor computes a daily deployment series for one operator (all its
// TLDs when tld == "", one otherwise) on the columnar engine: the
// operator's day-sorted event groups are swept once with advancing
// cursors, so an N-day series costs O(operator events + days) instead of
// a full population scan plus per-query sorting.
func (w *World) SeriesFor(operator, tld string, from, to simtime.Day, stepDays int) []analysis.SeriesPoint {
	return w.Index().Series(operator, tld, from, to, stepDays)
}

// SeriesForLegacy is the original full-scan series computation, retained
// as the reference oracle for the incremental engine.
func (w *World) SeriesForLegacy(operator, tld string, from, to simtime.Day, stepDays int) []analysis.SeriesPoint {
	if stepDays <= 0 {
		stepDays = 1
	}
	var keyDays, dsDays, fullDays []simtime.Day
	total := 0
	n := w.Len()
	for i := 0; i < n; i++ {
		d := w.DomainAt(i)
		if d.Operator != operator || (tld != "" && d.TLD != tld) {
			continue
		}
		total++
		if d.KeyDay != simtime.Never {
			keyDays = append(keyDays, d.KeyDay)
		}
		if d.DSDay != simtime.Never {
			dsDays = append(dsDays, d.DSDay)
			if !d.BrokenDS && !d.ExpiredSig {
				// Full deployment begins when both halves are in place.
				full := d.DSDay
				if d.KeyDay > full {
					full = d.KeyDay
				}
				fullDays = append(fullDays, full)
			}
		}
	}
	for _, s := range [][]simtime.Day{keyDays, dsDays, fullDays} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	countLE := func(s []simtime.Day, day simtime.Day) int {
		return sort.Search(len(s), func(i int) bool { return s[i] > day })
	}
	var out []analysis.SeriesPoint
	for day := from; day <= to; day += simtime.Day(stepDays) {
		out = append(out, analysis.SeriesPoint{
			Day:        day,
			Total:      total,
			WithDNSKEY: countLE(keyDays, day),
			WithDS:     countLE(dsDays, day),
			Full:       countLE(fullDays, day),
		})
	}
	return out
}

// OperatorsOf lists the operators a named registrar runs (from the named
// cohorts), for joining probe output with measurement series.
func OperatorsOf(registrarName string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range NamedCohorts() {
		if c.Registrar == registrarName && !seen[c.Operator] {
			seen[c.Operator] = true
			out = append(out, c.Operator)
		}
	}
	return out
}

// DomainsByRegistrar tallies scaled population per named registrar in the
// given TLDs (for the Table 2 "Domains" column), via the dense registrar
// ID column.
func (w *World) DomainsByRegistrar(tlds ...string) map[string]int {
	return w.Index().DomainsByRegistrar(tlds...)
}

// DNSKEYDomainsByRegistrar tallies DNSKEY-publishing domains per named
// registrar at the given day (for the Table 3 column).
func (w *World) DNSKEYDomainsByRegistrar(day simtime.Day, tlds ...string) map[string]int {
	return w.Index().DNSKEYByRegistrar(day, tlds...)
}
