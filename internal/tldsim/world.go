package tldsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// WorldConfig parameterizes world generation.
type WorldConfig struct {
	// Scale multiplies every population (default 1/1000 — .com becomes
	// ~118k domains instead of 118M). Percentages are scale-invariant.
	Scale float64
	// Seed drives all sampling; same seed → same world.
	Seed int64
	// TailOperators is the number of anonymous tail operators per TLD
	// (defaults chosen so the total operator count is ~10^4, matching the
	// x-axis of Figure 3).
	TailOperators map[string]int
	// WindowStart/WindowEnd bound the measurement (defaults: the paper's).
	WindowStart, WindowEnd simtime.Day
}

func (c *WorldConfig) fill() {
	if c.Scale == 0 {
		c.Scale = 1.0 / 1000
	}
	if c.WindowStart == 0 {
		c.WindowStart = simtime.GTLDStart
	}
	if c.WindowEnd == 0 {
		c.WindowEnd = simtime.End
	}
	if c.TailOperators == nil {
		c.TailOperators = map[string]int{
			"com": 6000, "net": 1300, "org": 1100, "nl": 1000, "se": 600,
		}
	}
}

// DomainState is one simulated domain's full history, from which any day's
// DNS state follows.
type DomainState struct {
	Name      string
	TLD       string
	Operator  string
	Registrar string
	// Created is the registration day (may precede the window).
	Created simtime.Day
	// KeyDay is when DNSKEYs first appear (simtime.Never if never).
	KeyDay simtime.Day
	// DSDay is when the DS reaches the registry (simtime.Never if never).
	DSDay simtime.Day
	// BrokenDS marks a DS that matches no served key.
	BrokenDS bool
	// ExpiredSig marks a zone whose RRSIGs are past their validity window.
	ExpiredSig bool
}

// nsHostsCache interns the one-element NS-host slice per operator, so
// projecting a domain onto a day shares one slice per operator instead of
// allocating a fresh one per record per day. Callers must treat the
// returned slice as immutable.
var nsHostsCache sync.Map // operator -> []string

func nsHostsFor(operator string) []string {
	if v, ok := nsHostsCache.Load(operator); ok {
		return v.([]string)
	}
	v, _ := nsHostsCache.LoadOrStore(operator, []string{nsFor(operator)})
	return v.([]string)
}

// RecordAt projects the domain onto one measurement day.
func (d *DomainState) RecordAt(day simtime.Day) dataset.Record {
	hasKey := d.KeyDay <= day
	hasDS := d.DSDay <= day
	return dataset.Record{
		Domain:     d.Name,
		TLD:        d.TLD,
		NSHosts:    nsHostsFor(d.Operator),
		Operator:   d.Operator,
		HasDNSKEY:  hasKey,
		HasRRSIG:   hasKey,
		HasDS:      hasDS,
		ChainValid: hasKey && hasDS && !d.BrokenDS && !d.ExpiredSig,
	}
}

// World is a generated ecosystem population.
type World struct {
	Config  WorldConfig
	Domains []DomainState
	// Cohorts are the resolved (scaled) cohorts, named then tail.
	Cohorts []Cohort

	// idx is the lazily built columnar analytics index over Domains; every
	// snapshot/series/aggregation query routes through it. Build once —
	// Domains are immutable after generation.
	idxOnce sync.Once
	idx     *colstore.Index
}

// Index returns the world's columnar analytics engine, building it on
// first use. The build interns operators/TLDs/registrars into dense IDs,
// lays the population out as fixed-width day columns, and day-sorts the
// per-(operator, TLD) adoption event lists the incremental series sweep
// runs on.
func (w *World) Index() *colstore.Index {
	w.idxOnce.Do(func() {
		b := colstore.NewBuilder(len(w.Domains))
		for i := range w.Domains {
			d := &w.Domains[i]
			b.Add(colstore.Domain{
				Name:       d.Name,
				TLD:        d.TLD,
				Operator:   d.Operator,
				Registrar:  d.Registrar,
				NSHost:     nsFor(d.Operator),
				KeyDay:     d.KeyDay,
				DSDay:      d.DSDay,
				BrokenDS:   d.BrokenDS,
				ExpiredSig: d.ExpiredSig,
			})
		}
		w.idx = b.Build()
	})
	return w.idx
}

// tailDSByTLD encodes how the anonymous tail handles DS records: gTLD tail
// operators upload DS for under half of their signed domains (the paper
// finds ~30% of DNSKEY domains lack DS, concentrated in a few operators,
// plus pervasive non-validation); .nl/.se tails are incentive-audited and
// mostly complete.
var tailDSByTLD = map[string]DSSpec{
	"com": {Mode: DSWithKey, Prob: 0.62, BrokenFrac: 0.05},
	"net": {Mode: DSWithKey, Prob: 0.62, BrokenFrac: 0.05},
	"org": {Mode: DSWithKey, Prob: 0.62, BrokenFrac: 0.05},
	"nl":  {Mode: DSWithKey, Prob: 0.95, BrokenFrac: 0.015},
	"se":  {Mode: DSWithKey, Prob: 0.94, BrokenFrac: 0.015},
}

// Build generates the world: named cohorts from the catalogue plus a
// power-law tail per TLD calibrated so each TLD hits its Table 1 size and
// DNSKEY percentage.
func Build(cfg WorldConfig) (*World, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg}

	named := NamedCohorts()
	// Scale the named cohorts and account per-TLD totals.
	namedDomains := make(map[string]int)    // tld -> scaled named population
	namedKeyEnd := make(map[string]float64) // tld -> expected DNSKEY count at window end
	var cohorts []Cohort
	for _, c := range named {
		c.Domains = int(math.Round(float64(c.Domains) * cfg.Scale))
		if c.Domains == 0 {
			continue
		}
		namedDomains[c.TLD] += c.Domains
		namedKeyEnd[c.TLD] += float64(c.Domains) * c.Key.EndFrac
		cohorts = append(cohorts, c)
	}

	// Tail per TLD: fill the population gap with power-law-sized anonymous
	// operators whose DNSKEY fraction closes the gap to the Table 1
	// percentage.
	for _, tld := range AllTLDs {
		total := int(math.Round(float64(TLDTotals[tld]) * cfg.Scale))
		tailTotal := total - namedDomains[tld]
		if tailTotal <= 0 {
			return nil, fmt.Errorf("tldsim: named cohorts exceed .%s population (%d > %d)", tld, namedDomains[tld], total)
		}
		targetKey := float64(total) * TLDKeyPct[tld] / 100
		tailKeyFrac := (targetKey - namedKeyEnd[tld]) / float64(tailTotal)
		if tailKeyFrac < 0 {
			tailKeyFrac = 0
		}
		if tailKeyFrac > 1 {
			tailKeyFrac = 1
		}
		sizes := powerLawSizes(cfg.TailOperators[tld], tailTotal)
		ds := tailDSByTLD[tld]
		for i, size := range sizes {
			if size == 0 {
				continue
			}
			cohorts = append(cohorts, Cohort{
				Operator: fmt.Sprintf("tail%04d.%s-hosting.example", i, tld),
				TLD:      tld,
				Domains:  size,
				// Tail adoption grows modestly across the window (the
				// paper: "rare ... but growing").
				Key: Linear(tailKeyFrac*0.8, tailKeyFrac),
				DS:  ds,
				// Small self-hosted operators let signatures lapse.
				ExpiredSigFrac: 0.03,
			})
		}
	}
	w.sampleCohorts(rng, cohorts)
	return w, nil
}

// BuildCustom generates a world from an explicit cohort list (no named
// catalogue, no tail) — for ablations and focused experiments.
func BuildCustom(cfg WorldConfig, cohorts []Cohort) (*World, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg}
	scaled := make([]Cohort, 0, len(cohorts))
	for _, c := range cohorts {
		c.Domains = int(math.Round(float64(c.Domains) * cfg.Scale))
		if c.Domains > 0 {
			scaled = append(scaled, c)
		}
	}
	w.sampleCohorts(rng, scaled)
	return w, nil
}

// sampleCohorts draws every domain's history from its cohort profile.
func (w *World) sampleCohorts(rng *rand.Rand, cohorts []Cohort) {
	cfg := w.Config
	w.Cohorts = cohorts
	for ci := range cohorts {
		c := &cohorts[ci]
		for i := 0; i < c.Domains; i++ {
			// Registrations spread over the three years before the window
			// end; most predate the window start.
			created := simtime.Day(rng.Intn(int(cfg.WindowStart)+700)) - 700
			keyDay := c.Key.sampleKeyDay(rng, created, cfg.WindowStart, cfg.WindowEnd)
			dsDay, broken := c.DS.sampleDS(rng, keyDay, created)
			expired := keyDay != simtime.Never && c.ExpiredSigFrac > 0 &&
				rng.Float64() < c.ExpiredSigFrac
			w.Domains = append(w.Domains, DomainState{
				Name:       fmt.Sprintf("d%07d-%s.%s", len(w.Domains), slug(c.Operator), c.TLD),
				TLD:        c.TLD,
				Operator:   c.Operator,
				Registrar:  c.Registrar,
				Created:    created,
				KeyDay:     keyDay,
				DSDay:      dsDay,
				BrokenDS:   broken,
				ExpiredSig: expired,
			})
		}
	}
}

// slug shortens an operator name into a domain-label-safe fragment.
func slug(operator string) string {
	out := make([]byte, 0, 12)
	for i := 0; i < len(operator) && len(out) < 12; i++ {
		ch := operator[i]
		if ch >= 'a' && ch <= 'z' || ch >= '0' && ch <= '9' {
			out = append(out, ch)
		}
	}
	return string(out)
}

// powerLawSizes distributes total domains over k operators with a power-law
// profile (exponent solved so the largest operator stays moderate), largest
// first. The distribution shape drives the long tail of Figure 3.
func powerLawSizes(k, total int) []int {
	if k <= 0 {
		k = 1
	}
	if k > total {
		k = total
	}
	// Find s such that sizes c*i^-s sum to the total with a head size of
	// about total/20 (keeps tail operators below the named ones).
	head := float64(total) / 20
	if head < 1 {
		head = 1
	}
	s := solveExponent(k, float64(total)/head)
	weights := make([]float64, k)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		sum += weights[i]
	}
	sizes := make([]int, k)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(total) * weights[i] / sum)
		assigned += sizes[i]
	}
	// Distribute the rounding remainder over the smallest operators so
	// everyone has at least one domain where possible.
	for i := 0; assigned < total; i = (i + 1) % k {
		sizes[k-1-i]++
		assigned++
	}
	return sizes
}

// solveExponent finds s with sum(i^-s)/1^-s == ratio via bisection: the
// ratio of total mass to head mass determines the tail flatness.
func solveExponent(k int, ratio float64) float64 {
	lo, hi := 0.0, 3.0
	f := func(s float64) float64 {
		sum := 0.0
		for i := 1; i <= k; i++ {
			sum += math.Pow(float64(i), -s)
		}
		return sum
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > ratio {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SnapshotAt projects the whole world onto one day through the columnar
// engine: a prebuilt record template is copied and only the day-dependent
// booleans are patched, with one shared NS-host slice per operator.
func (w *World) SnapshotAt(day simtime.Day) *dataset.Snapshot {
	return w.Index().Snapshot(day)
}

// SnapshotAtLegacy is the original record-at-a-time projection, retained
// as the reference oracle for the columnar engine: equivalence tests
// assert SnapshotAt output is identical, and regsec-bench measures the
// speedup against it.
func (w *World) SnapshotAtLegacy(day simtime.Day) *dataset.Snapshot {
	snap := &dataset.Snapshot{Day: day, Records: make([]dataset.Record, 0, len(w.Domains))}
	for i := range w.Domains {
		snap.Records = append(snap.Records, w.Domains[i].RecordAt(day))
	}
	return snap
}

// SeriesFor computes a daily deployment series for one operator (all its
// TLDs when tld == "", one otherwise) on the columnar engine: the
// operator's day-sorted event groups are swept once with advancing
// cursors, so an N-day series costs O(operator events + days) instead of
// a full population scan plus per-query sorting.
func (w *World) SeriesFor(operator, tld string, from, to simtime.Day, stepDays int) []analysis.SeriesPoint {
	return w.Index().Series(operator, tld, from, to, stepDays)
}

// SeriesForLegacy is the original full-scan series computation, retained
// as the reference oracle for the incremental engine.
func (w *World) SeriesForLegacy(operator, tld string, from, to simtime.Day, stepDays int) []analysis.SeriesPoint {
	if stepDays <= 0 {
		stepDays = 1
	}
	var keyDays, dsDays, fullDays []simtime.Day
	total := 0
	for i := range w.Domains {
		d := &w.Domains[i]
		if d.Operator != operator || (tld != "" && d.TLD != tld) {
			continue
		}
		total++
		if d.KeyDay != simtime.Never {
			keyDays = append(keyDays, d.KeyDay)
		}
		if d.DSDay != simtime.Never {
			dsDays = append(dsDays, d.DSDay)
			if !d.BrokenDS && !d.ExpiredSig {
				// Full deployment begins when both halves are in place.
				full := d.DSDay
				if d.KeyDay > full {
					full = d.KeyDay
				}
				fullDays = append(fullDays, full)
			}
		}
	}
	for _, s := range [][]simtime.Day{keyDays, dsDays, fullDays} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	countLE := func(s []simtime.Day, day simtime.Day) int {
		return sort.Search(len(s), func(i int) bool { return s[i] > day })
	}
	var out []analysis.SeriesPoint
	for day := from; day <= to; day += simtime.Day(stepDays) {
		out = append(out, analysis.SeriesPoint{
			Day:        day,
			Total:      total,
			WithDNSKEY: countLE(keyDays, day),
			WithDS:     countLE(dsDays, day),
			Full:       countLE(fullDays, day),
		})
	}
	return out
}

// OperatorsOf lists the operators a named registrar runs (from the named
// cohorts), for joining probe output with measurement series.
func OperatorsOf(registrarName string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range NamedCohorts() {
		if c.Registrar == registrarName && !seen[c.Operator] {
			seen[c.Operator] = true
			out = append(out, c.Operator)
		}
	}
	return out
}

// DomainsByRegistrar tallies scaled population per named registrar in the
// given TLDs (for the Table 2 "Domains" column), via the dense registrar
// ID column.
func (w *World) DomainsByRegistrar(tlds ...string) map[string]int {
	return w.Index().DomainsByRegistrar(tlds...)
}

// DNSKEYDomainsByRegistrar tallies DNSKEY-publishing domains per named
// registrar at the given day (for the Table 3 column).
func (w *World) DNSKEYDomainsByRegistrar(day simtime.Day, tlds ...string) map[string]int {
	return w.Index().DNSKEYByRegistrar(day, tlds...)
}
