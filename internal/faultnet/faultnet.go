// Package faultnet is a fault-injecting exchange.Exchanger middleware. It
// wraps any transport (the in-memory MemNet or the real NetExchanger) and
// injects deterministic, seeded faults per server address pattern: packet
// loss, added latency, timeouts, SERVFAIL/REFUSED substitution, truncation,
// response-ID corruption, and scheduled outages (a server dark for
// simulated days N..M).
//
// The paper's longitudinal sweeps (section 4.1) ran against the live DNS,
// where all of these happen daily; faultnet lets the simulated worlds of
// package tldsim declare flaky operators so the scan/resolve path can be
// proven to recover every measurable domain and to account for every
// domain it cannot measure.
//
// Determinism: every fault decision is a pure function of (seed, server,
// question, per-question attempt number), so a sweep injects an identical
// fault schedule regardless of worker scheduling, and a retried query draws
// a fresh — but reproducible — outcome on each attempt, exactly like an
// independent network sample.
package faultnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/simtime"
)

// Class names one kind of injected fault.
type Class string

// The fault classes an Injector can produce.
const (
	// ClassLoss drops the exchange as a lost packet (timeout error).
	ClassLoss Class = "loss"
	// ClassTimeout is an explicit unresponsive-server timeout.
	ClassTimeout Class = "timeout"
	// ClassServFail substitutes a SERVFAIL response.
	ClassServFail Class = "servfail"
	// ClassRefused substitutes a REFUSED response.
	ClassRefused Class = "refused"
	// ClassTruncate strips the response and sets TC=1.
	ClassTruncate Class = "truncate"
	// ClassBadID corrupts the response ID; a correct client discards the
	// datagram and observes a timeout.
	ClassBadID Class = "badid"
	// ClassOutage is a scheduled dark window (timeout for days N..M).
	ClassOutage Class = "outage"
)

// FaultError is the transport error produced by drop-style faults.
type FaultError struct {
	Class  Class
	Server string
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("faultnet: injected %s at %s", e.Class, e.Server)
}

// Timeout marks the error as a timeout (net.Error convention), which is
// what every drop-style fault looks like from the client side.
func (e *FaultError) Timeout() bool { return true }

// Rule declares the faults for servers matching a pattern. Probabilities
// are cumulative bands over one uniform draw per attempt, so Loss=0.1,
// ServFail=0.1 means 10% lost, a further 10% SERVFAIL, 80% clean.
type Rule struct {
	// Pattern selects server addresses: "*" matches all, a leading "*."
	// matches any address with that suffix ("*.flaky.example"), anything
	// else matches exactly. The first matching rule wins.
	Pattern string

	// Loss is the probability an exchange is dropped outright.
	Loss float64
	// Timeout is the probability of an explicit timeout (distinct class
	// for accounting; same observable as Loss).
	Timeout float64
	// ServFail / Refused substitute the rcode of an otherwise-successful
	// exchange.
	ServFail float64
	Refused  float64
	// Truncate strips the answer sections and sets TC=1.
	Truncate float64
	// BadID corrupts the response ID (observed as a timeout).
	BadID float64

	// Latency is added to every matched exchange, honoring the context.
	Latency time.Duration

	// OutageFrom/OutageTo declare a scheduled dark window: the server
	// times out on every simulated day in [OutageFrom, OutageTo]. Both
	// zero means no outage.
	OutageFrom, OutageTo simtime.Day
}

// matches reports whether the rule covers addr.
func (r *Rule) matches(addr string) bool {
	switch {
	case r.Pattern == "*":
		return true
	case strings.HasPrefix(r.Pattern, "*."):
		return strings.HasSuffix(addr, r.Pattern[1:])
	default:
		return r.Pattern == addr
	}
}

// hasOutage reports whether the rule declares a dark window.
func (r *Rule) hasOutage() bool { return r.OutageFrom != 0 || r.OutageTo != 0 }

// Injector is the fault-injecting Exchanger middleware.
type Injector struct {
	inner exchange.Exchanger
	rules []Rule
	seed  int64
	// clock supplies the simulated day for outage windows; nil disables
	// outage evaluation.
	clock func() simtime.Day

	mu       sync.Mutex
	attempts map[string]uint64 // per-question deterministic attempt counter

	counts [7]atomic.Int64 // indexed by classIndex
}

// classIndex maps a Class to its counter slot.
var classIndex = map[Class]int{
	ClassLoss: 0, ClassTimeout: 1, ClassServFail: 2, ClassRefused: 3,
	ClassTruncate: 4, ClassBadID: 5, ClassOutage: 6,
}

// New wraps inner with the rules. The seed fixes the fault schedule; clock
// may be nil when no rule declares outages.
func New(inner exchange.Exchanger, seed int64, clock func() simtime.Day, rules ...Rule) *Injector {
	return &Injector{
		inner: inner, rules: rules, seed: seed, clock: clock,
		attempts: make(map[string]uint64),
	}
}

// Middleware adapts the injector for an exchange.Build stack: it binds the
// injector's inner exchanger to whatever layer sits below it and returns
// the injector as the wrapped layer. Construct with New(nil, ...) when the
// transport is supplied by the stack, keep the *Injector for Stats, and
// place the middleware in exchange.Options.Middleware — below the retry
// budget (so injected faults consume attempts like real ones) and above
// the transport Tap. A Middleware is single-use: it rebinds this injector.
func (in *Injector) Middleware() exchange.Middleware {
	return func(next exchange.Exchanger) exchange.Exchanger {
		in.inner = next
		return in
	}
}

// Stats returns the injected-fault counts per class (zero-count classes
// omitted).
func (in *Injector) Stats() map[Class]int64 {
	out := make(map[Class]int64)
	for class, i := range classIndex {
		if n := in.counts[i].Load(); n > 0 {
			out[class] = n
		}
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	var sum int64
	for i := range in.counts {
		sum += in.counts[i].Load()
	}
	return sum
}

// count records one injected fault.
func (in *Injector) count(c Class) { in.counts[classIndex[c]].Add(1) }

// nextAttempt returns the 0-based attempt number for the question key.
func (in *Injector) nextAttempt(key string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.attempts[key]
	in.attempts[key] = n + 1
	return n
}

// draw produces the deterministic uniform sample for (key, attempt).
func (in *Injector) draw(key string, attempt uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", in.seed, key, attempt)
	// FNV-64a avalanches poorly on trailing-byte changes: bumping the
	// attempt number alone barely moves the high bits, so consecutive
	// attempts would draw near-identical samples and a "lost" query would
	// stay lost through every retry. A splitmix64-style finalizer spreads
	// the change across all 64 bits before taking the top 53 for a uniform
	// float64 in [0, 1).
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Exchange implements exchange.Exchanger, injecting faults for matched
// servers and passing everything else straight through.
func (in *Injector) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	var rule *Rule
	for i := range in.rules {
		if in.rules[i].matches(server) {
			rule = &in.rules[i]
			break
		}
	}
	if rule == nil {
		return in.inner.Exchange(ctx, server, q)
	}
	if rule.Latency > 0 {
		timer := time.NewTimer(rule.Latency)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	if rule.hasOutage() && in.clock != nil {
		if day := in.clock(); day >= rule.OutageFrom && day <= rule.OutageTo {
			in.count(ClassOutage)
			return nil, &FaultError{Class: ClassOutage, Server: server}
		}
	}
	key := server
	if len(q.Questions) > 0 {
		key = fmt.Sprintf("%s|%s|%d", server, q.Questions[0].Name, q.Questions[0].Type)
	}
	u := in.draw(key, in.nextAttempt(key))
	for _, band := range []struct {
		p     float64
		class Class
	}{
		{rule.Loss, ClassLoss},
		{rule.Timeout, ClassTimeout},
		{rule.ServFail, ClassServFail},
		{rule.Refused, ClassRefused},
		{rule.Truncate, ClassTruncate},
		{rule.BadID, ClassBadID},
	} {
		if u < band.p {
			in.count(band.class)
			return in.inject(ctx, server, q, band.class)
		}
		u -= band.p
	}
	return in.inner.Exchange(ctx, server, q)
}

// inject realizes one fault.
func (in *Injector) inject(ctx context.Context, server string, q *dnswire.Message, class Class) (*dnswire.Message, error) {
	switch class {
	case ClassLoss, ClassTimeout, ClassBadID:
		// Lost packet, dead server, or a response the client must discard:
		// all surface as a timeout.
		return nil, &FaultError{Class: class, Server: server}
	case ClassServFail, ClassRefused:
		resp := q.Reply()
		resp.RCode = dnswire.RCodeServerFailure
		if class == ClassRefused {
			resp.RCode = dnswire.RCodeRefused
		}
		return resp, nil
	case ClassTruncate:
		// The server had more than fit the datagram: empty sections, TC=1.
		resp, err := in.inner.Exchange(ctx, server, q)
		if err != nil {
			return nil, err
		}
		tr := q.Reply()
		tr.RCode = resp.RCode
		tr.Authoritative = resp.Authoritative
		tr.Truncated = true
		return tr, nil
	}
	return nil, &FaultError{Class: class, Server: server}
}
