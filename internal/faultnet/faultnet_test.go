package faultnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/simtime"
)

// retryTestPolicy keeps backoff negligible so tests run fast.
func retryTestPolicy() retry.Policy {
	return retry.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

// okExchanger answers every query with a one-record success.
type okExchanger struct{ calls int }

func (e *okExchanger) Exchange(_ context.Context, _ string, q *dnswire.Message) (*dnswire.Message, error) {
	e.calls++
	resp := q.Reply()
	resp.Authoritative = true
	resp.Answers = append(resp.Answers, dnswire.NewRR(q.Questions[0].Name, 300, &dnswire.NS{Host: "ns1.ok.example"}))
	return resp, nil
}

func query(id uint16, name string) *dnswire.Message {
	return dnswire.NewQuery(id, name, dnswire.TypeNS)
}

func TestPassThroughWithoutMatchingRule(t *testing.T) {
	inner := &okExchanger{}
	in := New(inner, 1, nil, Rule{Pattern: "ns1.flaky.example", Loss: 1})
	resp, err := in.Exchange(context.Background(), "ns1.solid.example", query(1, "a.com"))
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("pass-through: %v %v", resp, err)
	}
	if in.Total() != 0 {
		t.Errorf("faults injected on unmatched server: %d", in.Total())
	}
}

func TestPatternMatching(t *testing.T) {
	cases := []struct {
		pattern, addr string
		want          bool
	}{
		{"*", "anything", true},
		{"ns1.op.example", "ns1.op.example", true},
		{"ns1.op.example", "ns2.op.example", false},
		{"*.op.example", "ns1.op.example", true},
		{"*.op.example", "deep.ns1.op.example", true},
		{"*.op.example", "op.example", false},
	}
	for _, c := range cases {
		r := Rule{Pattern: c.pattern}
		if got := r.matches(c.addr); got != c.want {
			t.Errorf("pattern %q vs %q: %v, want %v", c.pattern, c.addr, got, c.want)
		}
	}
}

func TestTotalLossAlwaysTimesOut(t *testing.T) {
	in := New(&okExchanger{}, 7, nil, Rule{Pattern: "*", Loss: 1})
	_, err := in.Exchange(context.Background(), "ns1.op.example", query(1, "a.com"))
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Class != ClassLoss {
		t.Fatalf("err: %v", err)
	}
	if !fe.Timeout() {
		t.Error("loss fault not marked as timeout")
	}
	if in.Stats()[ClassLoss] != 1 || in.Total() != 1 {
		t.Errorf("stats: %v", in.Stats())
	}
}

func TestRCodeSubstitution(t *testing.T) {
	in := New(&okExchanger{}, 7, nil,
		Rule{Pattern: "sf.example", ServFail: 1},
		Rule{Pattern: "ref.example", Refused: 1},
	)
	resp, err := in.Exchange(context.Background(), "sf.example", query(1, "a.com"))
	if err != nil || resp.RCode != dnswire.RCodeServerFailure {
		t.Fatalf("servfail: %v %v", resp, err)
	}
	resp, err = in.Exchange(context.Background(), "ref.example", query(2, "a.com"))
	if err != nil || resp.RCode != dnswire.RCodeRefused {
		t.Fatalf("refused: %v %v", resp, err)
	}
	if in.Stats()[ClassServFail] != 1 || in.Stats()[ClassRefused] != 1 {
		t.Errorf("stats: %v", in.Stats())
	}
}

func TestTruncationStripsAnswers(t *testing.T) {
	in := New(&okExchanger{}, 7, nil, Rule{Pattern: "*", Truncate: 1})
	resp, err := in.Exchange(context.Background(), "ns1.op.example", query(1, "a.com"))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Answers) != 0 {
		t.Errorf("truncated response: TC=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
}

func TestScheduledOutage(t *testing.T) {
	day := simtime.Date(2016, 6, 1)
	clock := func() simtime.Day { return day }
	in := New(&okExchanger{}, 7, clock, Rule{
		Pattern:    "ns1.op.example",
		OutageFrom: simtime.Date(2016, 6, 10),
		OutageTo:   simtime.Date(2016, 6, 12),
	})
	if _, err := in.Exchange(context.Background(), "ns1.op.example", query(1, "a.com")); err != nil {
		t.Fatalf("before outage: %v", err)
	}
	day = simtime.Date(2016, 6, 11)
	_, err := in.Exchange(context.Background(), "ns1.op.example", query(2, "a.com"))
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Class != ClassOutage {
		t.Fatalf("during outage: %v", err)
	}
	day = simtime.Date(2016, 6, 13)
	if _, err := in.Exchange(context.Background(), "ns1.op.example", query(3, "a.com")); err != nil {
		t.Fatalf("after outage: %v", err)
	}
	if in.Stats()[ClassOutage] != 1 {
		t.Errorf("outage count: %v", in.Stats())
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	in := New(&okExchanger{}, 7, nil, Rule{Pattern: "*", Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := in.Exchange(ctx, "ns1.op.example", query(1, "a.com")); err == nil {
		t.Error("expected context error under injected latency")
	}
	if time.Since(start) > time.Second {
		t.Error("latency sleep ignored the context")
	}
}

// TestDeterministicSchedule checks the core reproducibility property: the
// same seed over the same question sequence injects byte-identical fault
// schedules, regardless of the interleaving of distinct questions, and a
// retried question redraws per attempt.
func TestDeterministicSchedule(t *testing.T) {
	run := func(order []string) map[Class]int64 {
		in := New(&okExchanger{}, 99, nil, Rule{Pattern: "*", Loss: 0.3, ServFail: 0.2})
		for i, name := range order {
			// Two attempts per question, as a retrying client would.
			for a := 0; a < 2; a++ {
				in.Exchange(context.Background(), "ns1.op.example", query(uint16(i), name))
			}
		}
		return in.Stats()
	}
	names := []string{"a.com", "b.com", "c.com", "d.com", "e.com", "f.com", "g.com", "h.com"}
	reversed := make([]string, len(names))
	for i, n := range names {
		reversed[len(names)-1-i] = n
	}
	a, b := run(names), run(reversed)
	for _, class := range []Class{ClassLoss, ClassServFail} {
		if a[class] != b[class] {
			t.Errorf("%s schedule order-dependent: %v vs %v", class, a, b)
		}
	}
	if a[ClassLoss]+a[ClassServFail] == 0 {
		t.Error("no faults injected at 50% combined probability over 16 attempts")
	}
}

// TestRetryRecoversThroughInjector drives the full middleware stack —
// retrying exchanger over injector over clean transport — and checks the
// retries-plus-failures identity that the sweep health report relies on.
func TestRetryRecoversThroughInjector(t *testing.T) {
	inner := &okExchanger{}
	in := New(inner, 3, nil, Rule{Pattern: "*", Loss: 0.4})
	rex := dnsserver.NewRetrying(in, retryTestPolicy())
	ok, failed := 0, 0
	for i := 0; i < 200; i++ {
		name := string(rune('a'+i%26)) + "x.com"
		if _, err := rex.Exchange(context.Background(), "ns1.op.example", query(uint16(i), name)); err != nil {
			failed++
		} else {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("nothing recovered under 40% loss with retries")
	}
	if got := rex.Retries() + rex.Failures(); got != in.Total() {
		t.Errorf("fault accounting: retries(%d) + failures(%d) != injected(%d)",
			rex.Retries(), rex.Failures(), in.Total())
	}
}

func TestInjectorComposesAsExchangeMiddleware(t *testing.T) {
	inner := &okExchanger{}
	inj := New(nil, 42, nil, Rule{Pattern: "ns1.flaky.example", Loss: 1})
	st, err := exchange.Build(exchange.Options{
		Transport:  inner,
		Middleware: []exchange.Middleware{inj.Middleware()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exchange(context.Background(), "ns1.flaky.example", query(1, "a.com")); err == nil {
		t.Fatal("loss=1 rule did not fault through the stack")
	}
	if inj.Stats()[ClassLoss] != 1 {
		t.Errorf("fault counters through middleware: %v", inj.Stats())
	}
	// A lost packet never reaches the layers below the injector: neither
	// the Tap nor the transport may see it.
	if st.Counters().Transport.Exchanges != 0 {
		t.Errorf("lost query reached the tap: %+v", st.Counters().Transport)
	}
	if inner.calls != 0 {
		t.Errorf("lost query reached the transport: %d calls", inner.calls)
	}
	resp, err := st.Exchange(context.Background(), "ns1.solid.example", query(2, "a.com"))
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("unmatched server through stack: %v %v", resp, err)
	}
	if st.Counters().Transport.Exchanges != 1 {
		t.Errorf("tap exchanges = %d, want 1", st.Counters().Transport.Exchanges)
	}
}
