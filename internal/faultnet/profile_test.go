package faultnet

import (
	"strings"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/simtime"
)

func TestParseProfile(t *testing.T) {
	rules, err := ParseProfile(`
# vantage point behind a lossy path
*.flaky.example  loss=0.2 latency=30ms
ns1.dark.example timeout=1.0   # hard down
*.maint.example  outage=2016-06-01..2016-06-03 servfail=0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules: %d", len(rules))
	}
	if r := rules[0]; r.Pattern != "*.flaky.example" || r.Loss != 0.2 || r.Latency != 30*time.Millisecond {
		t.Fatalf("rule 0: %+v", r)
	}
	if r := rules[1]; r.Pattern != "ns1.dark.example" || r.Timeout != 1.0 {
		t.Fatalf("rule 1: %+v", r)
	}
	from, _ := simtime.Parse("2016-06-01")
	to, _ := simtime.Parse("2016-06-03")
	if r := rules[2]; r.OutageFrom != from || r.OutageTo != to || r.ServFail != 0.5 {
		t.Fatalf("rule 2: %+v", r)
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"*.x loss=1.5", "probability"},
		{"*.x latency=-3ms", "duration"},
		{"*.x outage=2016-06-05..2016-06-01", "ends before"},
		{"*.x outage=sometime", "FROM..TO"},
		{"*.x bogus=1", "unknown fault key"},
		{"*.x loss", "key=value"},
	}
	for _, tc := range cases {
		if _, err := ParseProfile(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseProfile(%q): err %v, want %q", tc.in, err, tc.want)
		}
	}
}
