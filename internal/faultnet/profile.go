package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/simtime"
)

// ParseProfile parses a vantage-point fault profile: one rule per line,
// a server pattern followed by key=value fault settings. It is the text
// form distributed sweep workers take on the command line, so each worker
// process can model its own network vantage without recompiling.
//
//	# lossy resolver path to one operator
//	*.flaky.example  loss=0.2 latency=30ms
//	ns1.dark.example timeout=1.0
//	*.maint.example  outage=2016-06-01..2016-06-03
//
// Keys: loss, timeout, servfail, refused, truncate, badid (probabilities
// in [0,1]); latency (Go duration); outage (ISO day range, inclusive).
// Blank lines and #-comments are ignored. Rules keep file order (first
// match wins, as in Injector).
func ParseProfile(text string) ([]Rule, error) {
	var rules []Rule
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		rule := Rule{Pattern: fields[0]}
		for _, kv := range fields[1:] {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultnet: profile line %d: %q is not key=value", lineNo+1, kv)
			}
			if err := setRuleField(&rule, key, value); err != nil {
				return nil, fmt.Errorf("faultnet: profile line %d: %w", lineNo+1, err)
			}
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// setRuleField applies one key=value setting to a rule.
func setRuleField(rule *Rule, key, value string) error {
	prob := func(dst *float64) error {
		p, err := strconv.ParseFloat(value, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("%s=%q: want a probability in [0,1]", key, value)
		}
		*dst = p
		return nil
	}
	switch key {
	case "loss":
		return prob(&rule.Loss)
	case "timeout":
		return prob(&rule.Timeout)
	case "servfail":
		return prob(&rule.ServFail)
	case "refused":
		return prob(&rule.Refused)
	case "truncate":
		return prob(&rule.Truncate)
	case "badid":
		return prob(&rule.BadID)
	case "latency":
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return fmt.Errorf("latency=%q: want a non-negative duration", value)
		}
		rule.Latency = d
		return nil
	case "outage":
		from, to, ok := strings.Cut(value, "..")
		if !ok {
			return fmt.Errorf("outage=%q: want FROM..TO (ISO days)", value)
		}
		fromDay, err := simtime.Parse(from)
		if err != nil {
			return fmt.Errorf("outage from: %w", err)
		}
		toDay, err := simtime.Parse(to)
		if err != nil {
			return fmt.Errorf("outage to: %w", err)
		}
		if toDay < fromDay {
			return fmt.Errorf("outage=%q: window ends before it starts", value)
		}
		rule.OutageFrom, rule.OutageTo = fromDay, toDay
		return nil
	default:
		return fmt.Errorf("unknown fault key %q", key)
	}
}
