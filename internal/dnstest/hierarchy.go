// Package dnstest builds small signed DNS hierarchies (root → TLDs →
// second-level domains) on an in-memory network, for use by tests across
// the registrarsec module. It exercises the same zone, signing and serving
// code paths as the full ecosystem simulation.
package dnstest

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/ecosystem"
	"securepki.org/registrarsec/internal/resolver"
	"securepki.org/registrarsec/internal/zone"
)

// DomainMode selects the DNSSEC posture of a test domain, mirroring the
// paper's deployment classes.
type DomainMode int

const (
	// Unsigned: plain DNS, no DNSSEC records anywhere.
	Unsigned DomainMode = iota
	// Partial: DNSKEY and RRSIGs are served but no DS is uploaded — the
	// paper's "partially deployed" state.
	Partial
	// Full: signed zone plus matching DS in the TLD.
	Full
	// BogusDS: signed zone, but the TLD carries a DS that matches no key —
	// what happens when a registrar accepts a garbage DS upload.
	BogusDS
)

// RootAddr is the address of the root nameserver on the in-memory network.
const RootAddr = ecosystem.RootAddr

// Hierarchy is a root plus TLD servers with helpers to hang domains below
// them.
type Hierarchy struct {
	Net    *dnsserver.MemNet
	Now    time.Time
	Anchor []*dnswire.DS

	rootZone *zone.Zone
	rootSrv  *dnsserver.Authoritative

	tldZones   map[string]*zone.Zone
	tldSigners map[string]*zone.Signer
	tldSrv     map[string]*dnsserver.Authoritative

	// operator NS host -> its authoritative server
	operators map[string]*dnsserver.Authoritative
}

// tldNS names the nameserver host for a TLD.
func tldNS(tld string) string { return "ns1." + tld + "-registry.example" }

// TLDServerAddr returns the network address of a TLD's authoritative
// server in hierarchies and ecosystems built by this package.
func TLDServerAddr(tld string) string { return ecosystem.TLDServerAddr(tld) }

// NewHierarchy builds a signed root and the given signed TLDs at time now.
func NewHierarchy(now time.Time, tlds ...string) (*Hierarchy, error) {
	h := &Hierarchy{
		Net:        dnsserver.NewMemNet(),
		Now:        now,
		tldZones:   make(map[string]*zone.Zone),
		tldSigners: make(map[string]*zone.Signer),
		tldSrv:     make(map[string]*dnsserver.Authoritative),
		operators:  make(map[string]*dnsserver.Authoritative),
	}
	h.Net.Strict = true

	h.rootZone = zone.New("")
	h.rootZone.MustAdd(dnswire.NewRR("", 86400, &dnswire.SOA{
		MName: RootAddr, RName: "nstld.verisign-grs.com",
		Serial: 2016123100, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}))
	h.rootZone.MustAdd(dnswire.NewRR("", 86400, &dnswire.NS{Host: RootAddr}))
	rootSigner, err := zone.NewSigner(dnswire.AlgED25519, now)
	if err != nil {
		return nil, err
	}
	h.tldSigners[""] = rootSigner

	for _, tld := range tlds {
		if err := h.addTLD(tld, now); err != nil {
			return nil, err
		}
	}
	if err := rootSigner.Sign(h.rootZone); err != nil {
		return nil, err
	}
	h.rootSrv = dnsserver.NewAuthoritative()
	h.rootSrv.AddZone(h.rootZone)
	h.Net.Register(RootAddr, h.rootSrv)

	anchor, err := rootSigner.DSRecords("", dnswire.DigestSHA256)
	if err != nil {
		return nil, err
	}
	h.Anchor = anchor
	return h, nil
}

func (h *Hierarchy) addTLD(tld string, now time.Time) error {
	z := zone.New(tld)
	z.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.SOA{
		MName: tldNS(tld), RName: "hostmaster." + tld + "-registry.example",
		Serial: 2016123100, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 3600,
	}))
	z.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.NS{Host: tldNS(tld)}))
	signer, err := zone.NewSigner(dnswire.AlgED25519, now)
	if err != nil {
		return err
	}
	if err := signer.Sign(z); err != nil {
		return err
	}
	h.tldZones[tld] = z
	h.tldSigners[tld] = signer
	srv := dnsserver.NewAuthoritative()
	srv.AddZone(z)
	h.tldSrv[tld] = srv
	h.Net.Register(tldNS(tld), srv)

	// Delegate in the root with DS.
	h.rootZone.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.NS{Host: tldNS(tld)}))
	dss, err := signer.DSRecords(tld, dnswire.DigestSHA256)
	if err != nil {
		return err
	}
	for _, ds := range dss {
		h.rootZone.MustAdd(dnswire.NewRR(tld, 86400, ds))
	}
	return nil
}

// TLDZone exposes a TLD's zone for direct inspection or mutation.
func (h *Hierarchy) TLDZone(tld string) *zone.Zone { return h.tldZones[tld] }

// TLDSigner exposes the signer of a TLD (or of the root for "").
func (h *Hierarchy) TLDSigner(tld string) *zone.Signer { return h.tldSigners[tld] }

// TLDServer exposes a TLD's authoritative server.
func (h *Hierarchy) TLDServer(tld string) *dnsserver.Authoritative { return h.tldSrv[tld] }

// OperatorServer returns (creating on demand) the authoritative server
// registered at the given NS hostname.
func (h *Hierarchy) OperatorServer(nsHost string) *dnsserver.Authoritative {
	if srv, ok := h.operators[nsHost]; ok {
		return srv
	}
	srv := dnsserver.NewAuthoritative()
	h.operators[nsHost] = srv
	h.Net.Register(nsHost, srv)
	return srv
}

// AddDomain creates a second-level domain under its TLD, served by an
// operator server at nsHost, with the requested DNSSEC posture. It returns
// the child zone (and its signer when signed).
func (h *Hierarchy) AddDomain(domain, nsHost string, mode DomainMode) (*zone.Zone, *zone.Signer, error) {
	domain = dnswire.CanonicalName(domain)
	tld, _ := dnswire.Parent(domain)
	tz, ok := h.tldZones[tld]
	if !ok {
		return nil, nil, fmt.Errorf("dnstest: TLD %q not in hierarchy", tld)
	}
	child := zone.New(domain)
	child.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.SOA{
		MName: nsHost, RName: "hostmaster." + domain,
		Serial: 2016123100, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	child.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.NS{Host: nsHost}))
	child.MustAdd(dnswire.NewRR("www."+domain, 300, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")}))
	child.MustAdd(dnswire.NewRR(domain, 300, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.81")}))

	var signer *zone.Signer
	if mode != Unsigned {
		var err error
		signer, err = zone.NewSigner(dnswire.AlgED25519, h.Now)
		if err != nil {
			return nil, nil, err
		}
		if err := signer.Sign(child); err != nil {
			return nil, nil, err
		}
	}

	// Delegation in the TLD zone.
	tz.MustAdd(dnswire.NewRR(domain, 86400, &dnswire.NS{Host: nsHost}))
	switch mode {
	case Full:
		dss, err := signer.DSRecords(domain, dnswire.DigestSHA256)
		if err != nil {
			return nil, nil, err
		}
		for _, ds := range dss {
			tz.MustAdd(dnswire.NewRR(domain, 86400, ds))
		}
	case BogusDS:
		// A DS that matches no published key: 32 bytes of zeros.
		tz.MustAdd(dnswire.NewRR(domain, 86400, &dnswire.DS{
			KeyTag: 1, Algorithm: dnswire.AlgED25519,
			DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32),
		}))
	}
	// Re-sign the TLD so the new delegation's DS RRset carries signatures.
	if err := h.tldSigners[tld].Sign(tz); err != nil {
		return nil, nil, err
	}

	h.OperatorServer(nsHost).AddZone(child)
	return child, signer, nil
}

// Resolver builds an iterative resolver over the in-memory network.
func (h *Hierarchy) Resolver(dnssecOK bool) *resolver.Resolver {
	return resolver.New(resolver.Config{
		Roots:    []string{RootAddr},
		Exchange: h.Net,
		DNSSEC:   dnssecOK,
	})
}

// Validating builds a validating resolver anchored at this hierarchy's
// root key.
func (h *Hierarchy) Validating() *resolver.Validating {
	return &resolver.Validating{
		R:      h.Resolver(true),
		Anchor: h.Anchor,
		Now:    func() time.Time { return h.Now },
	}
}

// ValidateDomain is a convenience wrapper classifying one domain the way
// the paper does: does it publish DNSKEYs, does the TLD have a DS, and does
// the chain validate.
func (h *Hierarchy) ValidateDomain(domain string) (dnssec.Deployment, error) {
	domain = dnswire.CanonicalName(domain)
	tld, _ := dnswire.Parent(domain)
	tz := h.tldZones[tld]
	if tz == nil {
		return dnssec.DeploymentNone, fmt.Errorf("no TLD for %s", domain)
	}
	hasDS := len(tz.Lookup(domain, dnswire.TypeDS)) > 0
	v := h.Validating()
	res, chain, err := v.Lookup(context.Background(), domain, dnswire.TypeDNSKEY)
	if err != nil {
		return dnssec.DeploymentNone, err
	}
	hasKey := len(res.RRSet(domain, dnswire.TypeDNSKEY).RRs) > 0
	return dnssec.Classify(hasKey, hasDS, chain.Status == dnssec.Secure), nil
}
