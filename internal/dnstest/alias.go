package dnstest

import "securepki.org/registrarsec/internal/ecosystem"

// Aliases re-exporting the production ecosystem builder so test suites can
// keep a single import.
type (
	// Ecosystem aliases ecosystem.Ecosystem.
	Ecosystem = ecosystem.Ecosystem
	// EcosystemConfig aliases ecosystem.Config.
	EcosystemConfig = ecosystem.Config
	// Clock aliases ecosystem.Clock.
	Clock = ecosystem.Clock
)

// NewEcosystem builds a live registry substrate (see ecosystem.New).
func NewEcosystem(cfg EcosystemConfig) (*Ecosystem, error) { return ecosystem.New(cfg) }
