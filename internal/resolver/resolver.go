// Package resolver implements an iterative DNS resolver that walks
// referrals from the root, with optional DNSSEC validation on top of
// package dnssec.
//
// The resolver is transport-agnostic: it issues queries through an
// exchange.Exchanger stack (retry, per-server health breaker, optional
// dedup and message cache — see internal/exchange), so the same code
// resolves against real UDP/TCP servers and against the in-memory
// ecosystem simulation. This mirrors how the paper's measurements work —
// the OpenINTEL scans and the hands-on registrar probes both observe
// domains strictly through DNS queries.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
)

// Errors returned by resolution.
var (
	ErrNoServers     = errors.New("resolver: no servers configured")
	ErrReferralLoop  = errors.New("resolver: too many referrals")
	ErrLame          = errors.New("resolver: lame delegation")
	ErrNoGlue        = errors.New("resolver: referral without resolvable nameserver address")
	ErrAllServersBad = errors.New("resolver: all servers failed")
)

// Config configures a Resolver.
type Config struct {
	// Roots are the addresses of the root nameservers.
	Roots []string
	// Exchange issues individual queries (the transport).
	Exchange exchange.Exchanger
	// AddrOf maps an NS hostname to a server address when no glue is
	// available. The in-memory simulation registers handlers under the NS
	// hostname itself, so identity is the default.
	AddrOf func(host string) (string, bool)
	// DNSSEC sets the DO bit on queries so responses carry RRSIGs.
	DNSSEC bool
	// MaxReferrals bounds the referral chase (default 16).
	MaxReferrals int
	// Retry wraps Exchange in the per-query retry discipline (nil
	// disables retries; transient transport errors then immediately
	// rotate to the next server).
	Retry *retry.Policy
	// Health tunes the per-server circuit breaker (nil = defaults). The
	// breaker layer is always present: it drives healthy-first server
	// ordering during referral chases.
	Health *exchange.HealthOptions
	// Dedup coalesces identical in-flight queries.
	Dedup bool
	// Cache adds a TTL-honoring message cache below the referral cache
	// (nil disables it).
	Cache *exchange.CacheOptions
}

// Result is the outcome of an iterative resolution.
type Result struct {
	// RCode of the final authoritative response.
	RCode dnswire.RCode
	// Answers holds the answer-section records (RRSIGs included).
	Answers []*dnswire.RR
	// Authority holds the authority-section records of the final response.
	Authority []*dnswire.RR
	// Cuts lists the zone apexes traversed, root first.
	Cuts []string
	// Server is the address that gave the final answer.
	Server string
}

// RRSet extracts the records of type t owned by name from the answers,
// together with the RRSIGs covering them.
func (r *Result) RRSet(name string, t dnswire.Type) *dnssec.RRSet {
	name = dnswire.CanonicalName(name)
	set := &dnssec.RRSet{}
	for _, rr := range r.Answers {
		if rr.Name != name {
			continue
		}
		if rr.Type == t {
			set.RRs = append(set.RRs, rr)
		} else if rr.Type == dnswire.TypeRRSIG {
			if sig := rr.Data.(*dnswire.RRSIG); sig.TypeCovered == t {
				set.Sigs = append(set.Sigs, sig)
			}
		}
	}
	return set
}

// Resolver iteratively resolves names starting from the root servers.
type Resolver struct {
	cfg   Config
	stack *exchange.Stack

	mu    sync.RWMutex
	cache map[string]cacheEntry // zone apex -> servers + cut chain

	queries atomic.Int64
	id      atomic.Uint32
	lame    atomic.Int64
	errs    atomic.Int64
}

// New creates a resolver from cfg.
func New(cfg Config) *Resolver {
	if cfg.MaxReferrals == 0 {
		cfg.MaxReferrals = 16
	}
	if cfg.AddrOf == nil {
		cfg.AddrOf = func(host string) (string, bool) { return host, true }
	}
	r := &Resolver{cfg: cfg, cache: make(map[string]cacheEntry)}
	if cfg.Exchange != nil {
		hopts := cfg.Health
		if hopts == nil {
			hopts = &exchange.HealthOptions{}
		}
		// Lame rcodes stay with exchangeAny's own server failover; the
		// retry layer only absorbs transient transport faults.
		r.stack = exchange.MustBuild(exchange.Options{
			Transport: cfg.Exchange,
			Retry:     cfg.Retry,
			Health:    hopts,
			Dedup:     cfg.Dedup,
			Cache:     cfg.Cache,
		})
	}
	return r
}

// Stack exposes the assembled exchange stack (per-layer counters, server
// health); nil when the resolver was built without an Exchange.
func (r *Resolver) Stack() *exchange.Stack { return r.stack }

// Queries returns the number of upstream queries sent.
func (r *Resolver) Queries() int64 { return r.queries.Load() }

// LameResponses returns how many SERVFAIL/REFUSED answers forced a server
// rotation.
func (r *Resolver) LameResponses() int64 { return r.lame.Load() }

// TransportErrors returns how many exchanges failed outright (after any
// configured retries) and forced a server rotation.
func (r *Resolver) TransportErrors() int64 { return r.errs.Load() }

// FlushCache clears the referral cache and any message cache in the
// exchange stack; the simulation calls this when it mutates delegations
// between measurement days.
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	r.cache = make(map[string]cacheEntry)
	r.mu.Unlock()
	if r.stack != nil {
		r.stack.FlushCache()
	}
}

// cacheEntry remembers a zone cut's nameserver addresses and the chain of
// cuts from the root down to it (inclusive), so cache hits can reconstruct
// the Cuts list without re-walking the hierarchy.
type cacheEntry struct {
	servers []string
	cuts    []string
}

func (r *Resolver) cachedServers(cut string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cache[cut].servers
}

func (r *Resolver) storeServers(cut string, servers, cuts []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[cut] = cacheEntry{servers: servers, cuts: append([]string(nil), cuts...)}
}

// newQuery builds a query with a fresh ID and the configured EDNS options.
func (r *Resolver) newQuery(name string, t dnswire.Type) *dnswire.Message {
	q := dnswire.NewQuery(uint16(r.id.Add(1)), name, t)
	if r.cfg.DNSSEC {
		q.SetEDNS(4096, true)
	}
	return q
}

// exchangeAny tries servers until one gives a usable answer: a transport
// error or lame rcode (SERVFAIL/REFUSED) moves on to the next server
// rather than failing the referral chase. Ordering comes from the exchange
// stack's health layer — open-circuit servers are tried last, and a
// deterministic round-robin offset spreads load across a zone's NS set
// without making failure behavior depend on a global random source.
func (r *Resolver) exchangeAny(ctx context.Context, servers []string, q *dnswire.Message) (*dnswire.Message, string, error) {
	if len(servers) == 0 {
		return nil, "", ErrNoServers
	}
	if r.stack == nil {
		return nil, "", ErrNoServers
	}
	var lastErr error = ErrAllServersBad
	for _, server := range r.stack.OrderServers(servers) {
		r.queries.Add(1)
		resp, err := r.stack.Exchange(ctx, server, q)
		if err != nil {
			r.errs.Add(1)
			lastErr = err
			continue
		}
		if resp.RCode == dnswire.RCodeServerFailure || resp.RCode == dnswire.RCodeRefused {
			r.lame.Add(1)
			lastErr = fmt.Errorf("%w: %s from %s", ErrLame, resp.RCode, server)
			continue
		}
		return resp, server, nil
	}
	return nil, "", lastErr
}

// Resolve iteratively resolves (name, t) from the root.
func (r *Resolver) Resolve(ctx context.Context, name string, t dnswire.Type) (*Result, error) {
	name = dnswire.CanonicalName(name)
	servers := r.cfg.Roots
	cuts := []string{""}
	zone := ""
	// Start from the deepest ancestor cut already in the referral cache;
	// everything above it is reconstructed into Cuts without re-querying.
	// DS RRsets live in the parent zone, so a DS query must not start at
	// the cut bearing the name itself — the child would answer NODATA.
	cacheFrom := name
	if t == dnswire.TypeDS {
		cacheFrom, _ = dnswire.Parent(name)
	}
	if start, cached, ancestors := r.deepestCached(cacheFrom); cached != nil {
		zone, servers = start, cached
		cuts = ancestors
	}
	for hop := 0; hop < r.cfg.MaxReferrals; hop++ {
		resp, server, err := r.exchangeAny(ctx, servers, r.newQuery(name, t))
		if err != nil {
			return nil, fmt.Errorf("resolving %s/%v in zone %q: %w", name, t, zone, err)
		}
		if resp.Authoritative {
			return &Result{
				RCode:     resp.RCode,
				Answers:   resp.Answers,
				Authority: resp.Authority,
				Cuts:      cuts,
				Server:    server,
			}, nil
		}
		// Referral: find the NS set for the deepest cut offered.
		cut, nsHosts, glue := referralInfo(resp, name)
		if cut == "" || !deeper(cut, zone) {
			return nil, fmt.Errorf("%w: zone %q gave no usable referral for %s", ErrLame, zone, name)
		}
		zone = cut
		cuts = append(cuts, cut)
		nextServers, err := r.serversFor(cut, nsHosts, glue, cuts)
		if err != nil {
			return nil, err
		}
		servers = nextServers
	}
	return nil, ErrReferralLoop
}

// deepestCached finds the deepest ancestor zone of name whose nameserver
// addresses are cached. It returns that zone, its servers, and the cut list
// from the root down to it (inclusive).
func (r *Resolver) deepestCached(name string) (string, []string, []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Walk ancestors deepest-first: name, parent(name), ..., down to the
	// first label; the root is always resolvable from Roots directly.
	for cur := name; cur != ""; {
		if e, ok := r.cache[cur]; ok {
			return cur, e.servers, append([]string(nil), e.cuts...)
		}
		cur, _ = dnswire.Parent(cur)
	}
	return "", nil, nil
}

// serversFor resolves the addresses of a cut's nameservers, consulting the
// cache, glue, and the AddrOf mapping. cutChain is the root-to-cut chain
// recorded alongside the cache entry.
func (r *Resolver) serversFor(cut string, nsHosts []string, glue map[string][]string, cutChain []string) ([]string, error) {
	if cached := r.cachedServers(cut); cached != nil {
		return cached, nil
	}
	var servers []string
	for _, host := range nsHosts {
		if addrs := glue[host]; len(addrs) > 0 {
			servers = append(servers, addrs...)
			continue
		}
		if addr, ok := r.cfg.AddrOf(host); ok {
			servers = append(servers, addr)
		}
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("%w: cut %q (ns %v)", ErrNoGlue, cut, nsHosts)
	}
	r.storeServers(cut, servers, cutChain)
	return servers, nil
}

// referralInfo extracts the deepest delegation present in a referral
// response: the cut name, its NS hostnames, and any glue addresses.
func referralInfo(resp *dnswire.Message, qname string) (cut string, hosts []string, glue map[string][]string) {
	for _, rr := range resp.Authority {
		if rr.Type != dnswire.TypeNS {
			continue
		}
		if !dnswire.IsSubdomain(qname, rr.Name) {
			continue
		}
		if len(rr.Name) > len(cut) || cut == "" {
			if rr.Name != cut {
				hosts = nil
			}
			cut = rr.Name
		}
		if rr.Name == cut {
			hosts = append(hosts, rr.Data.(*dnswire.NS).Host)
		}
	}
	glue = make(map[string][]string)
	for _, rr := range resp.Additional {
		switch d := rr.Data.(type) {
		case *dnswire.A:
			glue[rr.Name] = append(glue[rr.Name], d.Addr.String())
		case *dnswire.AAAA:
			glue[rr.Name] = append(glue[rr.Name], d.Addr.String())
		}
	}
	return cut, hosts, glue
}

// deeper reports whether cut is strictly below zone.
func deeper(cut, zone string) bool {
	return dnswire.IsSubdomain(cut, zone) && cut != zone
}
