package resolver_test

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/resolver"
	"securepki.org/registrarsec/internal/zone"
)

var testNow = time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

func newWorld(t *testing.T) *dnstest.Hierarchy {
	t.Helper()
	h, err := dnstest.NewHierarchy(testNow, "com", "org", "nl")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct {
		name string
		ns   string
		mode dnstest.DomainMode
	}{
		{"signed.com", "ns1.goodreg.net", dnstest.Full},
		{"partial.com", "ns1.goodreg.net", dnstest.Partial},
		{"plain.com", "ns1.cheapreg.net", dnstest.Unsigned},
		{"broken.com", "ns1.sloppyreg.net", dnstest.BogusDS},
		{"signed.org", "ns1.goodreg.net", dnstest.Full},
	} {
		if _, _, err := h.AddDomain(d.name, d.ns, d.mode); err != nil {
			t.Fatalf("AddDomain(%s): %v", d.name, err)
		}
	}
	return h
}

func TestIterativeResolution(t *testing.T) {
	h := newWorld(t)
	r := h.Resolver(false)
	ctx := context.Background()
	res, err := r.Resolve(ctx, "www.signed.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeSuccess || len(res.Answers) == 0 {
		t.Fatalf("rcode=%v answers=%d", res.RCode, len(res.Answers))
	}
	wantCuts := []string{"", "com", "signed.com"}
	if len(res.Cuts) != len(wantCuts) {
		t.Fatalf("cuts = %v", res.Cuts)
	}
	for i := range wantCuts {
		if res.Cuts[i] != wantCuts[i] {
			t.Errorf("cut %d = %q, want %q", i, res.Cuts[i], wantCuts[i])
		}
	}
	if res.Server != "ns1.goodreg.net" {
		t.Errorf("final server %q", res.Server)
	}
}

func TestResolveNXDomain(t *testing.T) {
	h := newWorld(t)
	r := h.Resolver(false)
	res, err := r.Resolve(context.Background(), "ghost.signed.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %v", res.RCode)
	}
}

func TestResolveUnregisteredDomain(t *testing.T) {
	h := newWorld(t)
	r := h.Resolver(false)
	// never-registered.com: the TLD answers NXDOMAIN authoritatively.
	res, err := r.Resolve(context.Background(), "never-registered.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %v", res.RCode)
	}
}

func TestResolveDSFromParent(t *testing.T) {
	h := newWorld(t)
	r := h.Resolver(true)
	res, err := r.Resolve(context.Background(), "signed.com", dnswire.TypeDS)
	if err != nil {
		t.Fatal(err)
	}
	set := res.RRSet("signed.com", dnswire.TypeDS)
	if len(set.RRs) == 0 {
		t.Fatal("no DS returned")
	}
	if len(set.Sigs) == 0 {
		t.Error("DS RRset unsigned")
	}
	// Partial domain: no DS.
	res, err = r.Resolve(context.Background(), "partial.com", dnswire.TypeDS)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.RRSet("partial.com", dnswire.TypeDS).RRs); n != 0 {
		t.Errorf("partial.com has %d DS records", n)
	}
}

func TestResolverCacheAndCounters(t *testing.T) {
	h := newWorld(t)
	r := h.Resolver(false)
	ctx := context.Background()
	if _, err := r.Resolve(ctx, "www.signed.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	q1 := r.Queries()
	// Second domain under the same TLD: root referral should be cached.
	if _, err := r.Resolve(ctx, "www.plain.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	q2 := r.Queries() - q1
	if q2 >= q1 {
		t.Errorf("no caching benefit: first=%d second=%d", q1, q2)
	}
	r.FlushCache()
	if _, err := r.Resolve(ctx, "www.plain.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
}

func TestValidatingLookup(t *testing.T) {
	h := newWorld(t)
	v := h.Validating()
	ctx := context.Background()
	cases := []struct {
		name string
		want dnssec.Status
	}{
		{"www.signed.com", dnssec.Secure},
		{"www.signed.org", dnssec.Secure},
		{"www.partial.com", dnssec.Insecure},
		{"www.plain.com", dnssec.Insecure},
		{"www.broken.com", dnssec.Bogus},
	}
	for _, c := range cases {
		res, chain, err := v.Lookup(ctx, c.name, dnswire.TypeA)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if chain.Status != c.want {
			t.Errorf("%s: status %v (%s), want %v", c.name, chain.Status, chain.Reason, c.want)
		}
		if res.RCode != dnswire.RCodeSuccess {
			t.Errorf("%s: rcode %v", c.name, res.RCode)
		}
	}
}

func TestDeploymentClassificationViaDNS(t *testing.T) {
	h := newWorld(t)
	cases := []struct {
		domain string
		want   dnssec.Deployment
	}{
		{"signed.com", dnssec.DeploymentFull},
		{"partial.com", dnssec.DeploymentPartial},
		{"plain.com", dnssec.DeploymentNone},
		{"broken.com", dnssec.DeploymentBroken},
	}
	for _, c := range cases {
		got, err := h.ValidateDomain(c.domain)
		if err != nil {
			t.Fatalf("%s: %v", c.domain, err)
		}
		if got != c.want {
			t.Errorf("%s: %v, want %v", c.domain, got, c.want)
		}
	}
}

func TestResolveContextCancellation(t *testing.T) {
	h := newWorld(t)
	r := h.Resolver(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Resolve(ctx, "www.signed.com", dnswire.TypeA); err == nil {
		t.Error("cancelled context did not abort resolution")
	}
}

func TestResolveNoRoots(t *testing.T) {
	r := resolver.New(resolver.Config{Exchange: dnstestNet(t).Net})
	if _, err := r.Resolve(context.Background(), "x.com", dnswire.TypeA); err == nil {
		t.Error("resolution without roots succeeded")
	}
}

func dnstestNet(t *testing.T) *dnstest.Hierarchy {
	t.Helper()
	h, err := dnstest.NewHierarchy(testNow, "com")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestResolverLameDelegation(t *testing.T) {
	h := newWorld(t)
	// Register a domain whose NS host has no server behind it: the
	// resolver must fail with a useful error, not hang or loop.
	tz := h.TLDZone("com")
	tz.MustAdd(dnswire.NewRR("lame.com", 86400, &dnswire.NS{Host: "ns1.gone.example"}))
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}
	r := h.Resolver(false)
	_, err := r.Resolve(context.Background(), "www.lame.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("lame delegation resolved")
	}
}

func TestResolverReferralLoopBounded(t *testing.T) {
	h := newWorld(t)
	// A handler that always refers one label deeper: the resolver must
	// give up at MaxReferrals.
	evil := dnsserver.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		resp := q.Reply()
		qname := q.Questions[0].Name
		resp.Authority = append(resp.Authority,
			dnswire.NewRR(qname, 60, &dnswire.NS{Host: "ns1.evil.example"}))
		return resp
	})
	h.Net.Register("ns1.evil.example", evil)
	r := resolver.New(resolver.Config{
		Roots:        []string{"ns1.evil.example"},
		Exchange:     h.Net,
		MaxReferrals: 5,
	})
	_, err := r.Resolve(context.Background(), "a.b.c.d.e.f.g.h.victim.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("referral loop not bounded")
	}
}

func TestResolverServfailFailover(t *testing.T) {
	h := newWorld(t)
	// First server SERVFAILs; a second answers. The resolver must fail
	// over rather than surfacing the lame server's error.
	servfail := dnsserver.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeServerFailure
		return resp
	})
	h.Net.Register("ns-broken.goodreg.net", servfail)
	// Point signed.com's delegation at both servers.
	tz := h.TLDZone("com")
	tz.MustAdd(dnswire.NewRR("signed.com", 86400, &dnswire.NS{Host: "ns-broken.goodreg.net"}))
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}
	r := h.Resolver(false)
	// Multiple attempts to cover both server orderings.
	for i := 0; i < 6; i++ {
		r.FlushCache()
		res, err := r.Resolve(context.Background(), "www.signed.com", dnswire.TypeA)
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		if res.RCode != dnswire.RCodeSuccess {
			t.Fatalf("attempt %d: rcode %v", i, res.RCode)
		}
	}
}

func TestValidatingDenialGrading(t *testing.T) {
	h := newWorld(t)
	// nsec.com: signed WITH an NSEC chain; plain "signed.com" has none.
	child, _, err := h.AddDomain("nsec.com", "ns1.goodreg.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := zone.NewSigner(dnswire.AlgED25519, testNow)
	if err != nil {
		t.Fatal(err)
	}
	signer.AddNSEC = true
	if err := signer.Sign(child); err != nil {
		t.Fatal(err)
	}
	// Upload the DS so the chain is intact.
	tz := h.TLDZone("com")
	dss, err := signer.DSRecords("nsec.com", dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range dss {
		tz.MustAdd(dnswire.NewRR("nsec.com", 86400, ds))
	}
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}
	// An NSEC3 sibling.
	child3, _, err := h.AddDomain("nsec3.com", "ns1.goodreg.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	signer3, err := zone.NewSigner(dnswire.AlgED25519, testNow)
	if err != nil {
		t.Fatal(err)
	}
	signer3.NSEC3 = &dnswire.NSEC3PARAM{HashAlg: dnswire.NSEC3HashSHA1, Iterations: 3, Salt: []byte{0x42}}
	if err := signer3.Sign(child3); err != nil {
		t.Fatal(err)
	}
	dss3, err := signer3.DSRecords("nsec3.com", dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range dss3 {
		tz.MustAdd(dnswire.NewRR("nsec3.com", 86400, ds))
	}
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}

	v := h.Validating()
	ctx := context.Background()

	// NXDOMAIN in the NSEC zone: authenticated denial → Secure.
	_, chain, err := v.Lookup(ctx, "ghost.nsec.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Secure {
		t.Errorf("NSEC NXDOMAIN: %v (%s), want secure", chain.Status, chain.Reason)
	}
	// NODATA (www exists, MX does not) → Secure via type denial.
	_, chain, err = v.Lookup(ctx, "www.nsec.com", dnswire.TypeMX)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Secure {
		t.Errorf("NSEC NODATA: %v (%s), want secure", chain.Status, chain.Reason)
	}
	// Same through the NSEC3 zone.
	_, chain, err = v.Lookup(ctx, "ghost.nsec3.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Secure {
		t.Errorf("NSEC3 NXDOMAIN: %v (%s), want secure", chain.Status, chain.Reason)
	}
	// A signed zone WITHOUT a denial chain cannot prove the NXDOMAIN:
	// Indeterminate, not Secure.
	_, chain, err = v.Lookup(ctx, "ghost.signed.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Indeterminate {
		t.Errorf("no-proof NXDOMAIN: %v (%s), want indeterminate", chain.Status, chain.Reason)
	}
}
