package resolver_test

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/resolver"
	"securepki.org/registrarsec/internal/retry"
)

// TestResolutionSurvivesLossyNetwork drives the full referral chase through
// a fault injector dropping a quarter of all packets: with the retry policy
// wired in, every lookup still completes, and the resolver's failure
// counters reflect what the transport absorbed.
func TestResolutionSurvivesLossyNetwork(t *testing.T) {
	h := newWorld(t)
	lossy := faultnet.New(h.Net, 11, nil, faultnet.Rule{Pattern: "*", Loss: 0.25})
	r := resolver.New(resolver.Config{
		Roots:    []string{dnstest.RootAddr},
		Exchange: lossy,
		DNSSEC:   true,
		Retry:    &retry.Policy{MaxAttempts: 6, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	ctx := context.Background()
	for _, name := range []string{"www.signed.com", "www.partial.com", "www.plain.com", "www.signed.org"} {
		res, err := r.Resolve(ctx, name, dnswire.TypeA)
		if err != nil {
			t.Fatalf("resolve %s over lossy network: %v", name, err)
		}
		if res.RCode != dnswire.RCodeSuccess || len(res.Answers) == 0 {
			t.Errorf("%s: rcode=%v answers=%d", name, res.RCode, len(res.Answers))
		}
	}
	if lossy.Total() == 0 {
		t.Error("injector idle: the test exercised nothing")
	}
}

// TestRotationPastDeadServer lists a dark (unregistered) server ahead of a
// live one: every query must rotate past it instead of failing the chase.
func TestRotationPastDeadServer(t *testing.T) {
	h := newWorld(t)
	r := resolver.New(resolver.Config{
		Roots:    []string{"dead.root.example", dnstest.RootAddr},
		Exchange: h.Net,
	})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		res, err := r.Resolve(ctx, "www.signed.com", dnswire.TypeA)
		if err != nil {
			t.Fatalf("resolve with a dead root listed: %v", err)
		}
		if res.RCode != dnswire.RCodeSuccess {
			t.Fatalf("rcode: %v", res.RCode)
		}
		r.FlushCache()
	}
	if r.TransportErrors() == 0 {
		t.Error("dead server never hit: rotation not exercised")
	}
}
