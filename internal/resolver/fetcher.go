package resolver

import (
	"context"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
)

// Fetcher adapts the resolver to the dnssec.Fetcher interface so the chain
// validator can pull RRsets and zone-cut structure through live queries.
type Fetcher struct {
	R *Resolver
}

// FetchRRSet implements dnssec.Fetcher.
func (f *Fetcher) FetchRRSet(ctx context.Context, name string, t dnswire.Type) (*dnssec.RRSet, error) {
	res, err := f.R.Resolve(ctx, name, t)
	if err != nil {
		return nil, err
	}
	set := res.RRSet(name, t)
	set.Authority = res.Authority
	set.NXDomain = res.RCode == dnswire.RCodeNameError
	return set, nil
}

// Cuts implements dnssec.Fetcher: the zone apexes crossed while resolving
// name, which the referral chase discovers as a side effect.
func (f *Fetcher) Cuts(ctx context.Context, name string) ([]string, error) {
	res, err := f.R.Resolve(ctx, name, dnswire.TypeNS)
	if err != nil {
		return nil, err
	}
	return res.Cuts, nil
}

// Validating bundles a resolver with a trust anchor into a one-call
// validating lookup, the moral equivalent of `dig +dnssec` plus chain
// validation in DNSViz.
type Validating struct {
	R      *Resolver
	Anchor []*dnswire.DS
	// Now supplies validation time (time.Now when nil); the simulation
	// injects its clock here.
	Now func() time.Time
}

// Lookup resolves and validates (name, t); it returns both the lookup
// result and the chain validation outcome.
func (v *Validating) Lookup(ctx context.Context, name string, t dnswire.Type) (*Result, *dnssec.Result, error) {
	res, err := v.R.Resolve(ctx, name, t)
	if err != nil {
		return nil, nil, err
	}
	val := &dnssec.Validator{Anchor: v.Anchor, Fetch: &Fetcher{R: v.R}, Now: v.Now}
	chain, err := val.Validate(ctx, name, t)
	if err != nil {
		return res, chain, nil // chain carries Indeterminate + reason
	}
	return res, chain, nil
}
