package resolver_test

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/resolver"
)

// TestFullChainOverRealUDP stands up the root, the .com TLD and two child
// domains as three separate real UDP/TCP servers on loopback, then runs the
// iterative validating resolver against them — the complete production
// stack with nothing in memory.
func TestFullChainOverRealUDP(t *testing.T) {
	h, err := dnstest.NewHierarchy(testNow, "com")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.AddDomain("secure.com", "ns1.udp-op.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.AddDomain("partial.com", "ns1.udp-op.net", dnstest.Partial); err != nil {
		t.Fatal(err)
	}

	// Three real servers: root, TLD, operator.
	addrOf := map[string]string{}
	start := func(name string, handler dnsserver.Handler) *dnsserver.Server {
		t.Helper()
		srv := &dnsserver.Server{Handler: handler}
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrOf[name] = srv.Addr()
		return srv
	}
	rootSrv := start(dnstest.RootAddr, h.Net.Lookup(dnstest.RootAddr))
	start(dnstest.TLDServerAddr("com"), h.TLDServer("com"))
	start("ns1.udp-op.net", h.OperatorServer("ns1.udp-op.net"))

	r := resolver.New(resolver.Config{
		Roots:    []string{rootSrv.Addr()},
		Exchange: &dnsserver.NetExchanger{Timeout: 2 * time.Second},
		AddrOf: func(host string) (string, bool) {
			addr, ok := addrOf[host]
			return addr, ok
		},
		DNSSEC: true,
	})
	v := &resolver.Validating{
		R:      r,
		Anchor: h.Anchor,
		Now:    func() time.Time { return testNow },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	res, chain, err := v.Lookup(ctx, "www.secure.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeSuccess || len(res.Answers) == 0 {
		t.Fatalf("resolution over UDP failed: %v", res.RCode)
	}
	if chain.Status != dnssec.Secure {
		t.Fatalf("chain over UDP: %v (%s)", chain.Status, chain.Reason)
	}
	// The partial domain validates as insecure over the same wire.
	_, chain, err = v.Lookup(ctx, "www.partial.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Insecure {
		t.Errorf("partial domain: %v (%s), want insecure", chain.Status, chain.Reason)
	}
	if r.Queries() == 0 {
		t.Error("no queries recorded")
	}
}
