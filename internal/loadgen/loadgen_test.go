package loadgen_test

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/loadgen"
)

// startServer brings up a real Server on loopback fronting the com TLD zone
// through a Sharded handler.
func startServer(t *testing.T) (*dnsserver.Server, []string) {
	t.Helper()
	h, err := dnstest.NewHierarchy(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), "com")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"example.com", "signed.com", "plain.com"}
	for _, name := range names {
		if _, _, err := h.AddDomain(name, "ns1.operator.net", dnstest.Full); err != nil {
			t.Fatal(err)
		}
	}
	sh := dnsserver.NewSharded(dnsserver.ShardedConfig{})
	sh.AddZone(h.TLDZone("com"))
	srv := &dnsserver.Server{Handler: sh}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, names
}

func TestClosedLoopSmoke(t *testing.T) {
	srv, names := startServer(t)
	mix, err := loadgen.QueryMix(names, []dnswire.Type{dnswire.TypeNS, dnswire.TypeDS}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:     srv.Addr(),
		Queries:  mix,
		Conns:    2,
		Duration: 300 * time.Millisecond,
		Timeout:  time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatalf("no responses received: %+v", res)
	}
	if res.Sent < res.Received {
		t.Fatalf("sent %d < received %d", res.Sent, res.Received)
	}
	if res.QPS <= 0 {
		t.Fatalf("QPS not positive: %+v", res)
	}
	if res.P50 <= 0 {
		t.Fatalf("p50 not positive: %+v", res)
	}
	// The mix repeats fast, so the wire cache must be carrying load.
	if st := srv.Stats(); st.CacheHits == 0 {
		t.Errorf("no cache hits after closed-loop run: %+v", st)
	}
}

func TestOpenLoopSmoke(t *testing.T) {
	srv, names := startServer(t)
	mix, err := loadgen.QueryMix(names, []dnswire.Type{dnswire.TypeSOA}, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:     srv.Addr(),
		Queries:  mix,
		Conns:    2,
		Mode:     loadgen.Open,
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatalf("no responses received: %+v", res)
	}
	if res.OfferedQPS != 2000 {
		t.Fatalf("offered rate not reported: %+v", res)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := loadgen.Run(context.Background(), loadgen.Config{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr: "127.0.0.1:1", Queries: [][]byte{make([]byte, 4)},
	}); err == nil {
		t.Error("short query accepted")
	}
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr: "127.0.0.1:1", Queries: [][]byte{make([]byte, 12)}, Mode: loadgen.Open,
	}); err == nil {
		t.Error("open mode without rate accepted")
	}
}
