// Package loadgen generates DNS query load against a real server over UDP,
// in two modes. Closed-loop: a fixed set of virtual clients each keeps one
// query outstanding, so throughput measures the server's sustainable
// service rate. Open-loop: queries are offered at a configured rate
// regardless of completions (with an optional linear ramp), so latency
// percentiles measure behavior at a known offered load — the honest way to
// report p99 (closed-loop self-throttles and hides queueing).
//
// The generator pre-packs its query mix once and patches message IDs per
// send; the receive path matches responses to send timestamps by ID, so
// the measurement loop itself does not allocate.
package loadgen

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// Mode selects the load model.
type Mode int

const (
	// Closed keeps one query outstanding per connection.
	Closed Mode = iota
	// Open offers queries at Rate QPS regardless of completions.
	Open
)

// Config describes one load run.
type Config struct {
	// Addr is the server's UDP address (host:port).
	Addr string
	// Queries is the pre-packed query mix; IDs are patched per send. Each
	// wire must be a well-formed query ≥ 12 bytes.
	Queries [][]byte
	// Conns is the number of client sockets (virtual resolvers); default 8.
	Conns int
	// Mode selects closed- or open-loop (default Closed).
	Mode Mode
	// Rate is the total offered QPS in Open mode.
	Rate int
	// Ramp linearly ramps the offered rate from 0 to Rate over this
	// duration before the measured window (Open mode).
	Ramp time.Duration
	// Duration is the measured window (default 2s).
	Duration time.Duration
	// Timeout is the per-query response deadline in Closed mode
	// (default 1s); timed-out queries count as lost, not as latency.
	Timeout time.Duration
	// Seed shuffles the per-connection query order deterministically.
	Seed int64
}

// Result reports one load run.
type Result struct {
	Mode       string        `json:"mode"`
	Sent       uint64        `json:"sent"`
	Received   uint64        `json:"received"`
	Lost       uint64        `json:"lost"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	QPS        float64       `json:"qps"`
	OfferedQPS float64       `json:"offered_qps,omitempty"`
	P50        time.Duration `json:"p50_ns"`
	P90        time.Duration `json:"p90_ns"`
	P99        time.Duration `json:"p99_ns"`
	P999       time.Duration `json:"p999_ns"`
}

// hist is a fixed-footprint latency histogram: 1µs buckets to 8.192ms,
// then 1ms buckets to 4s. Coarse above that is fine — a DNS query that
// slow is an outage, not a latency.
type hist struct {
	micro [8192]uint32
	milli [4096]uint32
	over  uint32
	count uint64
}

func (h *hist) add(d time.Duration) {
	h.count++
	us := d.Microseconds()
	switch {
	case us < int64(len(h.micro)):
		h.micro[us]++
	case us/1000 < int64(len(h.milli)):
		h.milli[us/1000]++
	default:
		h.over++
	}
}

func (h *hist) merge(o *hist) {
	for i, v := range o.micro {
		h.micro[i] += v
	}
	for i, v := range o.milli {
		h.milli[i] += v
	}
	h.over += o.over
	h.count += o.count
}

// quantile returns the latency at fraction q of the distribution.
func (h *hist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, v := range h.micro {
		seen += uint64(v)
		if seen > target {
			return time.Duration(i) * time.Microsecond
		}
	}
	for i, v := range h.milli {
		seen += uint64(v)
		if seen > target {
			return time.Duration(i) * time.Millisecond
		}
	}
	return 4 * time.Second
}

// Run executes one load run. It returns an error only for setup failures;
// lost queries are reported in the Result.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if len(cfg.Queries) == 0 {
		return Result{}, errors.New("loadgen: empty query mix")
	}
	for _, q := range cfg.Queries {
		if len(q) < 12 {
			return Result{}, errors.New("loadgen: query shorter than a DNS header")
		}
	}
	conns := cfg.Conns
	if conns <= 0 {
		conns = 8
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = 2 * time.Second
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	if cfg.Mode == Open && cfg.Rate <= 0 {
		return Result{}, errors.New("loadgen: open-loop mode requires Rate")
	}

	socks := make([]*net.UDPConn, conns)
	for i := range socks {
		raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: %w", err)
		}
		c, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: %w", err)
		}
		defer c.Close()
		socks[i] = c
	}

	var sent, received atomic.Uint64
	hists := make([]*hist, conns)
	for i := range hists {
		hists[i] = &hist{}
	}

	var offered float64
	start := time.Now()
	var wg sync.WaitGroup
	switch cfg.Mode {
	case Open:
		offered = float64(cfg.Rate)
		runOpen(ctx, cfg, socks, hists, &sent, &received, duration)
	default:
		deadline := start.Add(duration)
		for i, c := range socks {
			wg.Add(1)
			go func(i int, c *net.UDPConn) {
				defer wg.Done()
				closedLoop(ctx, cfg, i, c, hists[i], &sent, &received, deadline, timeout)
			}(i, c)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	total := &hist{}
	for _, h := range hists {
		total.merge(h)
	}
	res := Result{
		Mode:       map[Mode]string{Closed: "closed", Open: "open"}[cfg.Mode],
		Sent:       sent.Load(),
		Received:   received.Load(),
		Lost:       sent.Load() - received.Load(),
		Elapsed:    elapsed,
		QPS:        float64(received.Load()) / elapsed.Seconds(),
		OfferedQPS: offered,
		P50:        total.quantile(0.50),
		P90:        total.quantile(0.90),
		P99:        total.quantile(0.99),
		P999:       total.quantile(0.999),
	}
	return res, nil
}

// closedLoop keeps one query outstanding on c until deadline.
func closedLoop(ctx context.Context, cfg Config, worker int, c *net.UDPConn, h *hist,
	sent, received *atomic.Uint64, deadline time.Time, timeout time.Duration) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
	buf := make([]byte, 65535)
	q := make([]byte, 0, 512)
	var id uint16
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return
		}
		id++
		q = append(q[:0], cfg.Queries[rng.Intn(len(cfg.Queries))]...)
		binary.BigEndian.PutUint16(q, id)
		t0 := time.Now()
		if _, err := c.Write(q); err != nil {
			return
		}
		sent.Add(1)
		c.SetReadDeadline(t0.Add(timeout))
		for {
			n, err := c.Read(buf)
			if err != nil {
				break // timeout: count as lost, move on
			}
			if n >= 2 && binary.BigEndian.Uint16(buf) == id {
				received.Add(1)
				h.add(time.Since(t0))
				break
			}
			// Stale response from a timed-out earlier query; keep reading.
		}
	}
}

// runOpen paces queries at cfg.Rate across the sockets, with per-socket
// receiver goroutines matching responses to send times by message ID.
func runOpen(ctx context.Context, cfg Config, socks []*net.UDPConn, hists []*hist,
	sent, received *atomic.Uint64, duration time.Duration) {
	type connState struct {
		c *net.UDPConn
		// sendNanos[id] is the send time of the query bearing that ID,
		// written by the sender and read by the receiver; 16-bit ID space
		// wraps, which is safe while in-flight per conn stays under 64k.
		sendNanos [65536]atomic.Int64
		id        atomic.Uint32
	}
	states := make([]*connState, len(socks))
	for i, c := range socks {
		states[i] = &connState{c: c}
	}

	var recvWG sync.WaitGroup
	for i, st := range states {
		recvWG.Add(1)
		go func(st *connState, h *hist) {
			defer recvWG.Done()
			buf := make([]byte, 65535)
			for {
				n, err := st.c.Read(buf)
				if err != nil {
					return // socket closed by the drain below
				}
				if n < 2 {
					continue
				}
				id := binary.BigEndian.Uint16(buf)
				t0 := st.sendNanos[id].Swap(0)
				if t0 == 0 {
					continue
				}
				received.Add(1)
				h.add(time.Duration(nowNanos() - t0))
			}
		}(st, hists[i])
	}

	// Senders: each paces its share of the rate with a token schedule.
	perSender := cfg.Rate / len(socks)
	if perSender == 0 {
		perSender = 1
	}
	var sendWG sync.WaitGroup
	for i, st := range states {
		sendWG.Add(1)
		go func(worker int, st *connState) {
			defer sendWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			q := make([]byte, 0, 512)
			interval := float64(time.Second) / float64(perSender)
			begin := time.Now()
			end := begin.Add(cfg.Ramp + duration)
			next := begin
			for time.Now().Before(end) {
				if ctx.Err() != nil {
					return
				}
				now := time.Now()
				if now.Before(next) {
					time.Sleep(next.Sub(now))
				}
				// During the ramp the interval shrinks linearly to target.
				step := interval
				if cfg.Ramp > 0 {
					if since := time.Since(begin); since < cfg.Ramp {
						frac := float64(since) / float64(cfg.Ramp)
						if frac < 0.05 {
							frac = 0.05
						}
						step = interval / frac
					}
				}
				next = next.Add(time.Duration(step))
				id := uint16(st.id.Add(1))
				q = append(q[:0], cfg.Queries[rng.Intn(len(cfg.Queries))]...)
				binary.BigEndian.PutUint16(q, id)
				st.sendNanos[id].Store(nowNanos())
				if _, err := st.c.Write(q); err != nil {
					return
				}
				sent.Add(1)
			}
		}(i, st)
	}
	sendWG.Wait()
	// Grace period for stragglers, then unblock the receivers.
	time.Sleep(200 * time.Millisecond)
	for _, st := range states {
		st.c.SetReadDeadline(time.Now())
	}
	recvWG.Wait()
}

var nanoBase = time.Now()

// nowNanos is a monotonic clock reading cheap enough for the send path.
func nowNanos() int64 { return int64(time.Since(nanoBase)) }

// QueryMix pre-packs a query wire per (name, type) pair; doRatio of them
// (deterministically by seed) carry EDNS with the DO bit set, the rest are
// plain EDNS queries. The packed IDs are zero; Run patches them per send.
func QueryMix(names []string, types []dnswire.Type, doRatio float64, seed int64) ([][]byte, error) {
	if len(names) == 0 || len(types) == 0 {
		return nil, errors.New("loadgen: empty name or type set")
	}
	rng := rand.New(rand.NewSource(seed))
	mix := make([][]byte, 0, len(names)*len(types))
	for _, name := range names {
		for _, t := range types {
			q := dnswire.NewQuery(0, name, t)
			q.SetEDNS(dnswire.ReplyUDPPayload, rng.Float64() < doRatio)
			wire, err := q.Pack()
			if err != nil {
				return nil, err
			}
			mix = append(mix, wire)
		}
	}
	return mix, nil
}
