package dnssec

import (
	"bytes"
	"crypto/sha1"
	"errors"
	"fmt"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// NSEC3 support (RFC 5155): the iterated, salted hash of owner names and
// the verification of hashed denial-of-existence proofs.

// Errors returned by NSEC3 processing.
var (
	ErrNSEC3Alg      = errors.New("dnssec: unsupported NSEC3 hash algorithm")
	ErrNoCloserProof = errors.New("dnssec: no NSEC3 covers the next-closer name")
	ErrNoEncloser    = errors.New("dnssec: no NSEC3 matches a closest encloser")
)

// NSEC3Hash computes the RFC 5155 section 5 hash of a canonical name:
// SHA-1 over the wire-format name concatenated with the salt, iterated.
func NSEC3Hash(name string, salt []byte, iterations uint16) ([]byte, error) {
	wire, err := nameWire(name)
	if err != nil {
		return nil, err
	}
	h := sha1.Sum(append(append([]byte(nil), wire...), salt...))
	digest := h[:]
	for i := 0; i < int(iterations); i++ {
		h = sha1.Sum(append(append([]byte(nil), digest...), salt...))
		digest = h[:]
	}
	return digest, nil
}

// nameWire renders a canonical name in uncompressed wire form.
func nameWire(name string) ([]byte, error) {
	name = dnswire.CanonicalName(name)
	if err := dnswire.CheckName(name); err != nil {
		return nil, err
	}
	var out []byte
	for _, label := range dnswire.SplitLabels(name) {
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0), nil
}

// NSEC3OwnerName returns the owner name of the NSEC3 record for name in
// zone: base32hex(hash).zone.
func NSEC3OwnerName(name, zone string, salt []byte, iterations uint16) (string, error) {
	h, err := NSEC3Hash(name, salt, iterations)
	if err != nil {
		return "", err
	}
	label := dnswire.Base32HexEncode(h)
	zone = dnswire.CanonicalName(zone)
	if zone == "" {
		return label, nil
	}
	return label + "." + zone, nil
}

// NSEC3Proof is one NSEC3 record with its signatures.
type NSEC3Proof struct {
	Owner string // full owner name (hash label + zone)
	NSEC3 *dnswire.NSEC3
	RRs   []*dnswire.RR
	Sigs  []*dnswire.RRSIG
}

// hashLabel extracts the binary hash from the proof's owner name.
func (p *NSEC3Proof) hashLabel() ([]byte, error) {
	labels := dnswire.SplitLabels(p.Owner)
	if len(labels) == 0 {
		return nil, fmt.Errorf("dnssec: NSEC3 with empty owner")
	}
	return dnswire.Base32HexDecode(labels[0])
}

// Matches reports whether the proof's owner hash equals h.
func (p *NSEC3Proof) Matches(h []byte) bool {
	own, err := p.hashLabel()
	return err == nil && bytes.Equal(own, h)
}

// Covers reports whether h falls strictly between the proof's owner hash
// and its next hash (with wrap-around).
func (p *NSEC3Proof) Covers(h []byte) bool {
	own, err := p.hashLabel()
	if err != nil {
		return false
	}
	next := p.NSEC3.NextHashed
	if bytes.Compare(own, next) < 0 {
		return bytes.Compare(own, h) < 0 && bytes.Compare(h, next) < 0
	}
	// Wrap-around span.
	return bytes.Compare(own, h) < 0 || bytes.Compare(h, next) < 0
}

// ExtractNSEC3Proofs collects NSEC3 records (and their RRSIGs) from an
// authority section.
func ExtractNSEC3Proofs(authority []*dnswire.RR) []*NSEC3Proof {
	byOwner := map[string]*NSEC3Proof{}
	var order []string
	for _, rr := range authority {
		if n3, ok := rr.Data.(*dnswire.NSEC3); ok {
			p, exists := byOwner[rr.Name]
			if !exists {
				p = &NSEC3Proof{Owner: rr.Name, NSEC3: n3}
				byOwner[rr.Name] = p
				order = append(order, rr.Name)
			}
			p.RRs = append(p.RRs, rr)
		}
	}
	for _, rr := range authority {
		if sig, ok := rr.Data.(*dnswire.RRSIG); ok && sig.TypeCovered == dnswire.TypeNSEC3 {
			if p, exists := byOwner[rr.Name]; exists {
				p.Sigs = append(p.Sigs, sig)
			}
		}
	}
	out := make([]*NSEC3Proof, 0, len(order))
	for _, owner := range order {
		out = append(out, byOwner[owner])
	}
	return out
}

// VerifyNameDenialNSEC3 validates an NXDOMAIN proof per RFC 5155 section
// 8.4: there must be a closest encloser CE (an ancestor of qname whose hash
// some validly-signed NSEC3 *matches*), and the next-closer name below CE
// must be *covered* by a validly-signed NSEC3. (The wildcard-denial leg is
// also checked when a covering record for *.CE is present; zones without
// wildcards conventionally cover it with the same spans.)
func VerifyNameDenialNSEC3(qname, zone string, params *dnswire.NSEC3PARAM, proofs []*NSEC3Proof, keys []*dnswire.DNSKEY, now time.Time) error {
	if params.HashAlg != dnswire.NSEC3HashSHA1 {
		return fmt.Errorf("%w: %d", ErrNSEC3Alg, params.HashAlg)
	}
	qname = dnswire.CanonicalName(qname)
	zone = dnswire.CanonicalName(zone)
	if !dnswire.IsSubdomain(qname, zone) {
		return fmt.Errorf("dnssec: %s outside zone %s", qname, zone)
	}
	// Find the closest encloser: the nearest ancestor of qname whose hash
	// some validly-signed NSEC3 matches. Track the "next closer" name (one
	// label below the encloser on the path to qname).
	ce := qname
	nextCloser := ""
	for {
		ceHash, err := NSEC3Hash(ce, params.Salt, params.Iterations)
		if err != nil {
			return err
		}
		if findVerified(proofs, keys, now, func(p *NSEC3Proof) bool { return p.Matches(ceHash) }) != nil {
			break // ce provably exists
		}
		if ce == zone {
			// The apex must always have a matching NSEC3 in a signed zone.
			return fmt.Errorf("%w for %s", ErrNoEncloser, qname)
		}
		nextCloser = ce
		parent, ok := dnswire.Parent(ce)
		if !ok || !dnswire.IsSubdomain(parent, zone) {
			return fmt.Errorf("%w for %s", ErrNoEncloser, qname)
		}
		ce = parent
	}
	if nextCloser == "" {
		// qname's own hash matched: the name exists, so this is not a
		// valid denial of existence.
		return fmt.Errorf("dnssec: NSEC3 matches %s itself; name exists", qname)
	}
	ncHash, err := NSEC3Hash(nextCloser, params.Salt, params.Iterations)
	if err != nil {
		return err
	}
	if findVerified(proofs, keys, now, func(p *NSEC3Proof) bool { return p.Covers(ncHash) }) == nil {
		return fmt.Errorf("%w: %s", ErrNoCloserProof, nextCloser)
	}
	return nil
}

// VerifyTypeDenialNSEC3 validates a NODATA proof: a validly signed NSEC3
// matching qname's hash whose type bitmap excludes t.
func VerifyTypeDenialNSEC3(qname string, t dnswire.Type, params *dnswire.NSEC3PARAM, proofs []*NSEC3Proof, keys []*dnswire.DNSKEY, now time.Time) error {
	h, err := NSEC3Hash(dnswire.CanonicalName(qname), params.Salt, params.Iterations)
	if err != nil {
		return err
	}
	p := findVerified(proofs, keys, now, func(p *NSEC3Proof) bool { return p.Matches(h) })
	if p == nil {
		return fmt.Errorf("%w for %s", ErrNoEncloser, qname)
	}
	for _, present := range p.NSEC3.Types {
		if present == t {
			return fmt.Errorf("%w: %v at %s", ErrTypeNotDenied, t, qname)
		}
	}
	return nil
}

// findVerified returns the first proof satisfying pred whose RRset signature
// verifies under keys.
func findVerified(proofs []*NSEC3Proof, keys []*dnswire.DNSKEY, now time.Time, pred func(*NSEC3Proof) bool) *NSEC3Proof {
	for _, p := range proofs {
		if !pred(p) {
			continue
		}
		for _, sig := range p.Sigs {
			if VerifyWithAnyKey(p.RRs, sig, keys, now) == nil {
				return p
			}
		}
	}
	return nil
}
