package dnssec

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

var testWindow = SignOptions{
	Inception:  time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
	Expiration: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
}

var testNow = time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

func genKey(t testing.TB, alg dnswire.Algorithm, flags uint16) *KeyPair {
	t.Helper()
	k, err := GenerateKeyPair(alg, flags, nil)
	if err != nil {
		t.Fatalf("GenerateKeyPair(%v): %v", alg, err)
	}
	return k
}

func sampleRRSet() []*dnswire.RR {
	return []*dnswire.RR{
		dnswire.NewRR("www.example.org", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}),
		dnswire.NewRR("www.example.org", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}),
	}
}

func TestSignVerifyAllAlgorithms(t *testing.T) {
	for _, alg := range []dnswire.Algorithm{
		dnswire.AlgRSASHA256, dnswire.AlgECDSAP256SHA256, dnswire.AlgED25519,
	} {
		t.Run(alg.String(), func(t *testing.T) {
			key := genKey(t, alg, dnswire.FlagsZSK)
			rrs := sampleRRSet()
			sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
			if err != nil {
				t.Fatalf("SignRRSet: %v", err)
			}
			sig := sigRR.Data.(*dnswire.RRSIG)
			if sig.Labels != 3 {
				t.Errorf("Labels = %d, want 3", sig.Labels)
			}
			if sig.SignerName != "example.org" {
				t.Errorf("SignerName = %q", sig.SignerName)
			}
			if err := VerifyRRSet(rrs, sig, key.DNSKEY(), testNow); err != nil {
				t.Errorf("VerifyRRSet: %v", err)
			}
		})
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	rrs := sampleRRSet()
	sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(*dnswire.RRSIG)

	// Change one record: verification must fail.
	tampered := sampleRRSet()
	tampered[0].Data = &dnswire.A{Addr: netip.MustParseAddr("203.0.113.66")}
	if err := VerifyRRSet(tampered, sig, key.DNSKEY(), testNow); err == nil {
		t.Error("tampered RRset verified")
	}
	// Change the TTL: must still verify, because the canonical form uses
	// OriginalTTL from the RRSIG (resolvers see decremented TTLs).
	aged := sampleRRSet()
	aged[0].TTL, aged[1].TTL = 17, 17
	if err := VerifyRRSet(aged, sig, key.DNSKEY(), testNow); err != nil {
		t.Errorf("TTL-decayed RRset rejected: %v", err)
	}
	// Corrupt the signature bytes.
	bad := *sig
	bad.Signature = append([]byte(nil), sig.Signature...)
	bad.Signature[0] ^= 0xff
	if err := VerifyRRSet(rrs, &bad, key.DNSKEY(), testNow); err == nil {
		t.Error("corrupted signature verified")
	}
}

func TestVerifyOrderIndependence(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	rrs := sampleRRSet()
	sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(*dnswire.RRSIG)
	reversed := []*dnswire.RR{rrs[1], rrs[0]}
	if err := VerifyRRSet(reversed, sig, key.DNSKEY(), testNow); err != nil {
		t.Errorf("reordered RRset rejected: %v", err)
	}
	// Duplicated records collapse in canonical form (RFC 4034 section 6.3).
	dup := []*dnswire.RR{rrs[0], rrs[1], rrs[0]}
	if err := VerifyRRSet(dup, sig, key.DNSKEY(), testNow); err != nil {
		t.Errorf("duplicated RRset rejected: %v", err)
	}
}

func TestVerifyWindow(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	rrs := sampleRRSet()
	sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(*dnswire.RRSIG)
	for _, tc := range []struct {
		at   time.Time
		want bool
	}{
		{testWindow.Inception.Add(-time.Hour), false},
		{testWindow.Inception, true},
		{testNow, true},
		{testWindow.Expiration, true},
		{testWindow.Expiration.Add(time.Hour), false},
	} {
		err := VerifyRRSet(rrs, sig, key.DNSKEY(), tc.at)
		if ok := err == nil; ok != tc.want {
			t.Errorf("at %v: valid=%v, want %v (%v)", tc.at, ok, tc.want, err)
		}
	}
}

func TestVerifyRejectsWrongKeyAndMetadata(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	other := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	ecdsaKey := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.FlagsZSK)
	rrs := sampleRRSet()
	sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(*dnswire.RRSIG)
	if err := VerifyRRSet(rrs, sig, other.DNSKEY(), testNow); err == nil {
		t.Error("verified with an unrelated key")
	}
	if err := VerifyRRSet(rrs, sig, ecdsaKey.DNSKEY(), testNow); err == nil {
		t.Error("verified with a key of a different algorithm")
	}
	// Revoked/non-zone key must be rejected regardless of signature.
	nonZone := key.DNSKEY()
	nonZone.Flags = 0
	if err := VerifyRRSet(rrs, sig, nonZone, testNow); err == nil {
		t.Error("verified with a non-zone key")
	}
	// Signer outside the owner's ancestry.
	badSigner := *sig
	badSigner.SignerName = "other.test"
	if err := VerifyRRSet(rrs, &badSigner, key.DNSKEY(), testNow); err == nil {
		t.Error("verified with out-of-bailiwick signer")
	}
}

func TestSignRejectsBadInput(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	if _, err := SignRRSet(nil, key, "example.org", testWindow); err == nil {
		t.Error("signed empty RRset")
	}
	mixed := []*dnswire.RR{
		dnswire.NewRR("a.example.org", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}),
		dnswire.NewRR("b.example.org", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}),
	}
	if _, err := SignRRSet(mixed, key, "example.org", testWindow); err == nil {
		t.Error("signed mixed RRset")
	}
	outside := []*dnswire.RR{
		dnswire.NewRR("www.other.test", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}),
	}
	if _, err := SignRRSet(outside, key, "example.org", testWindow); err == nil {
		t.Error("signed RRset outside the signer zone")
	}
}

func TestVerifyWithAnyKey(t *testing.T) {
	zsk := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	ksk := genKey(t, dnswire.AlgED25519, dnswire.FlagsKSK)
	rrs := sampleRRSet()
	sigRR, err := SignRRSet(rrs, zsk, "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(*dnswire.RRSIG)
	keys := []*dnswire.DNSKEY{ksk.DNSKEY(), zsk.DNSKEY()}
	if err := VerifyWithAnyKey(rrs, sig, keys, testNow); err != nil {
		t.Errorf("VerifyWithAnyKey: %v", err)
	}
	if err := VerifyWithAnyKey(rrs, sig, []*dnswire.DNSKEY{ksk.DNSKEY()}, testNow); err == nil {
		t.Error("verified without the signing key present")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		rrs := make([]*dnswire.RR, n)
		for i := range rrs {
			addr := netip.AddrFrom4([4]byte{192, 0, 2, byte(r.Intn(256))})
			rrs[i] = dnswire.NewRR("host.example.org", uint32(60+r.Intn(3600)), &dnswire.A{Addr: addr})
		}
		sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
		if err != nil {
			return false
		}
		sig := sigRR.Data.(*dnswire.RRSIG)
		// Shuffled set must verify.
		r.Shuffle(len(rrs), func(i, j int) { rrs[i], rrs[j] = rrs[j], rrs[i] })
		return VerifyRRSet(rrs, sig, key.DNSKEY(), testNow) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsePublicKeyRoundTrip(t *testing.T) {
	for _, alg := range []dnswire.Algorithm{
		dnswire.AlgRSASHA256, dnswire.AlgECDSAP256SHA256, dnswire.AlgED25519,
	} {
		key := genKey(t, alg, dnswire.FlagsKSK)
		if _, err := ParsePublicKey(key.DNSKEY()); err != nil {
			t.Errorf("%v: ParsePublicKey: %v", alg, err)
		}
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	cases := []*dnswire.DNSKEY{
		{Algorithm: dnswire.AlgRSASHA256, PublicKey: []byte{}},
		{Algorithm: dnswire.AlgRSASHA256, PublicKey: []byte{1, 3}}, // exponent but no modulus
		{Algorithm: dnswire.AlgECDSAP256SHA256, PublicKey: make([]byte, 63)},
		{Algorithm: dnswire.AlgECDSAP256SHA256, PublicKey: make([]byte, 64)}, // (0,0) not on curve
		{Algorithm: dnswire.AlgED25519, PublicKey: make([]byte, 31)},
		{Algorithm: dnswire.Algorithm(99), PublicKey: make([]byte, 32)},
	}
	for i, dk := range cases {
		if _, err := ParsePublicKey(dk); err == nil {
			t.Errorf("case %d (%v): garbage key accepted", i, dk.Algorithm)
		}
	}
}

func TestKeyPairBasics(t *testing.T) {
	ksk := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.FlagsKSK)
	zsk := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.FlagsZSK)
	if !ksk.IsKSK() || zsk.IsKSK() {
		t.Error("IsKSK misreports")
	}
	rr := ksk.RR("example.org", 3600)
	if rr.Type != dnswire.TypeDNSKEY || rr.Name != "example.org" {
		t.Errorf("RR: %v", rr)
	}
	if ksk.KeyTag() != ksk.DNSKEY().KeyTag() {
		t.Error("KeyTag disagrees with DNSKEY")
	}
	if _, err := GenerateKeyPair(dnswire.Algorithm(200), dnswire.FlagsZSK, nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func BenchmarkSignAlgorithms(b *testing.B) {
	rrs := sampleRRSet()
	for _, alg := range []dnswire.Algorithm{
		dnswire.AlgRSASHA256, dnswire.AlgECDSAP256SHA256, dnswire.AlgED25519,
	} {
		key := genKey(b, alg, dnswire.FlagsZSK)
		b.Run("sign/"+alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SignRRSet(rrs, key, "example.org", testWindow); err != nil {
					b.Fatal(err)
				}
			}
		})
		sigRR, err := SignRRSet(rrs, key, "example.org", testWindow)
		if err != nil {
			b.Fatal(err)
		}
		sig := sigRR.Data.(*dnswire.RRSIG)
		dk := key.DNSKEY()
		b.Run("verify/"+alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := VerifyRRSet(rrs, sig, dk, testNow); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
