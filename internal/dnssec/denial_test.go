package dnssec

import (
	"testing"

	"securepki.org/registrarsec/internal/dnswire"
)

// buildNSECChain constructs a small signed NSEC chain for a zone with
// names: apex, alpha, delta (next wraps back to apex).
func buildNSECChain(t *testing.T) (proofs []*DenialProof, keys []*dnswire.DNSKEY) {
	t.Helper()
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	keys = []*dnswire.DNSKEY{key.DNSKEY()}
	entries := []struct {
		owner, next string
		types       []dnswire.Type
	}{
		{"example.org", "alpha.example.org", []dnswire.Type{dnswire.TypeSOA, dnswire.TypeNS, dnswire.TypeDNSKEY}},
		{"alpha.example.org", "delta.example.org", []dnswire.Type{dnswire.TypeA}},
		{"delta.example.org", "example.org", []dnswire.Type{dnswire.TypeA, dnswire.TypeTXT}},
	}
	var authority []*dnswire.RR
	for _, e := range entries {
		rr := dnswire.NewRR(e.owner, 300, &dnswire.NSEC{NextName: e.next, Types: e.types})
		sig, err := SignRRSet([]*dnswire.RR{rr}, key, "example.org", testWindow)
		if err != nil {
			t.Fatal(err)
		}
		authority = append(authority, rr, sig)
	}
	return ExtractDenialProofs(authority), keys
}

func TestVerifyNameDenial(t *testing.T) {
	proofs, keys := buildNSECChain(t)
	if len(proofs) != 3 {
		t.Fatalf("extracted %d proofs", len(proofs))
	}
	// beta sorts between alpha and delta: covered.
	if err := VerifyNameDenial("beta.example.org", proofs, keys, testNow); err != nil {
		t.Errorf("beta denial: %v", err)
	}
	// zulu sorts after delta: covered by the wrap-around record.
	if err := VerifyNameDenial("zulu.example.org", proofs, keys, testNow); err != nil {
		t.Errorf("zulu denial: %v", err)
	}
	// alpha EXISTS: no NSEC covers it, denial must fail.
	if err := VerifyNameDenial("alpha.example.org", proofs, keys, testNow); err == nil {
		t.Error("denial of an existing name verified")
	}
}

func TestVerifyNameDenialRejectsUnsigned(t *testing.T) {
	proofs, keys := buildNSECChain(t)
	for _, p := range proofs {
		p.Sigs = nil
	}
	if err := VerifyNameDenial("beta.example.org", proofs, keys, testNow); err == nil {
		t.Error("unsigned denial accepted")
	}
}

func TestVerifyNameDenialRejectsForgedNSEC(t *testing.T) {
	proofs, keys := buildNSECChain(t)
	// An attacker swaps in an NSEC with a wider span but cannot sign it.
	stranger := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	rr := dnswire.NewRR("a.example.org", 300, &dnswire.NSEC{NextName: "z.example.org"})
	sig, err := SignRRSet([]*dnswire.RR{rr}, stranger, "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	forged := ExtractDenialProofs([]*dnswire.RR{rr, sig})
	if err := VerifyNameDenial("beta.example.org", forged, keys, testNow); err == nil {
		t.Error("forged NSEC accepted")
	}
	_ = proofs
}

func TestVerifyTypeDenial(t *testing.T) {
	proofs, keys := buildNSECChain(t)
	// alpha has only A: an MX query is provably NODATA.
	if err := VerifyTypeDenial("alpha.example.org", dnswire.TypeMX, proofs, keys, testNow); err != nil {
		t.Errorf("MX type denial: %v", err)
	}
	// A exists at alpha: type denial must fail.
	if err := VerifyTypeDenial("alpha.example.org", dnswire.TypeA, proofs, keys, testNow); err == nil {
		t.Error("denied a type that exists")
	}
	// No NSEC at a nonexistent name.
	if err := VerifyTypeDenial("ghost.example.org", dnswire.TypeA, proofs, keys, testNow); err == nil {
		t.Error("type denial without an NSEC at the owner")
	}
}
