// Package dnssec implements DNSSEC cryptographic operations (RFC 4033-4035):
// key pair generation, RRset signing and verification in canonical form,
// DS digest computation, and a chain-of-trust validator.
//
// Three algorithms are supported, matching what dominates real deployment:
// RSA/SHA-256 (8), ECDSA P-256/SHA-256 (13) and Ed25519 (15). All
// cryptography is performed by the Go standard library; nothing in the
// registrarsec simulation stack fakes a signature.
//
// The package also defines the paper's central classification of a domain's
// DNSSEC state: None, Partial (DNSKEY published but no DS at the parent —
// unverifiable and therefore of "limited value"), and Full (complete chain
// of trust).
package dnssec

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"math/big"

	"securepki.org/registrarsec/internal/dnswire"
)

// Errors returned by key handling.
var (
	ErrUnsupportedAlgorithm = errors.New("dnssec: unsupported algorithm")
	ErrBadPublicKey         = errors.New("dnssec: malformed public key")
)

// RSAKeyBits is the modulus size used for generated RSA keys. 1024-bit ZSKs
// were still common in the measurement period, but we default to 2048.
const RSAKeyBits = 2048

// KeyPair is a DNSSEC signing key: the private half plus the precomputed
// DNSKEY RDATA of the public half.
type KeyPair struct {
	Flags     uint16
	Algorithm dnswire.Algorithm

	signer crypto.Signer
	dnskey dnswire.DNSKEY
	tag    uint16
}

// GenerateKeyPair creates a fresh key for the given algorithm with the given
// DNSKEY flags (dnswire.FlagsKSK or dnswire.FlagsZSK). Randomness is drawn
// from rnd, or crypto/rand when rnd is nil.
func GenerateKeyPair(alg dnswire.Algorithm, flags uint16, rnd io.Reader) (*KeyPair, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	var signer crypto.Signer
	var err error
	switch alg {
	case dnswire.AlgRSASHA256:
		signer, err = rsa.GenerateKey(rnd, RSAKeyBits)
	case dnswire.AlgECDSAP256SHA256:
		signer, err = ecdsa.GenerateKey(elliptic.P256(), rnd)
	case dnswire.AlgED25519:
		_, signer, err = ed25519.GenerateKey(rnd)
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedAlgorithm, alg)
	}
	if err != nil {
		return nil, fmt.Errorf("dnssec: generating %v key: %w", alg, err)
	}
	return newKeyPair(alg, flags, signer)
}

func newKeyPair(alg dnswire.Algorithm, flags uint16, signer crypto.Signer) (*KeyPair, error) {
	pubWire, err := encodePublicKey(alg, signer.Public())
	if err != nil {
		return nil, err
	}
	kp := &KeyPair{
		Flags:     flags,
		Algorithm: alg,
		signer:    signer,
		dnskey: dnswire.DNSKEY{
			Flags:     flags,
			Protocol:  3,
			Algorithm: alg,
			PublicKey: pubWire,
		},
	}
	kp.tag = kp.dnskey.KeyTag()
	return kp, nil
}

// DNSKEY returns a copy of the public key record data.
func (k *KeyPair) DNSKEY() *dnswire.DNSKEY {
	dk := k.dnskey
	dk.PublicKey = append([]byte(nil), k.dnskey.PublicKey...)
	return &dk
}

// RR returns the DNSKEY resource record for this key at the given zone apex.
func (k *KeyPair) RR(zone string, ttl uint32) *dnswire.RR {
	return dnswire.NewRR(zone, ttl, k.DNSKEY())
}

// KeyTag returns the RFC 4034 Appendix B tag of the public key.
func (k *KeyPair) KeyTag() uint16 { return k.tag }

// IsKSK reports whether the key carries the SEP flag.
func (k *KeyPair) IsKSK() bool { return k.Flags&dnswire.FlagSEP != 0 }

// encodePublicKey produces the algorithm-specific DNSKEY public key field.
func encodePublicKey(alg dnswire.Algorithm, pub crypto.PublicKey) ([]byte, error) {
	switch alg {
	case dnswire.AlgRSASHA256:
		// RFC 3110: exponent length (1 or 3 octets), exponent, modulus.
		k, ok := pub.(*rsa.PublicKey)
		if !ok {
			return nil, ErrBadPublicKey
		}
		e := big.NewInt(int64(k.E)).Bytes()
		var out []byte
		if len(e) <= 255 {
			out = append(out, byte(len(e)))
		} else {
			out = append(out, 0, byte(len(e)>>8), byte(len(e)))
		}
		out = append(out, e...)
		return append(out, k.N.Bytes()...), nil
	case dnswire.AlgECDSAP256SHA256:
		// RFC 6605: X | Y, each 32 octets.
		k, ok := pub.(*ecdsa.PublicKey)
		if !ok || k.Curve != elliptic.P256() {
			return nil, ErrBadPublicKey
		}
		out := make([]byte, 64)
		k.X.FillBytes(out[:32])
		k.Y.FillBytes(out[32:])
		return out, nil
	case dnswire.AlgED25519:
		// RFC 8080: the 32-octet public key verbatim.
		k, ok := pub.(ed25519.PublicKey)
		if !ok {
			return nil, ErrBadPublicKey
		}
		return append([]byte(nil), k...), nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnsupportedAlgorithm, alg)
}

// ParsePublicKey decodes the public key carried in a DNSKEY record.
func ParsePublicKey(dk *dnswire.DNSKEY) (crypto.PublicKey, error) {
	b := dk.PublicKey
	switch dk.Algorithm {
	case dnswire.AlgRSASHA256:
		if len(b) < 3 {
			return nil, ErrBadPublicKey
		}
		eLen := int(b[0])
		off := 1
		if eLen == 0 {
			if len(b) < 3 {
				return nil, ErrBadPublicKey
			}
			eLen = int(b[1])<<8 | int(b[2])
			off = 3
		}
		if eLen == 0 || len(b) < off+eLen+1 {
			return nil, ErrBadPublicKey
		}
		e := new(big.Int).SetBytes(b[off : off+eLen])
		if !e.IsInt64() || e.Int64() > 1<<31-1 || e.Int64() < 3 {
			return nil, fmt.Errorf("%w: bad RSA exponent", ErrBadPublicKey)
		}
		n := new(big.Int).SetBytes(b[off+eLen:])
		if n.BitLen() < 512 || n.BitLen() > 8192 {
			return nil, fmt.Errorf("%w: RSA modulus %d bits", ErrBadPublicKey, n.BitLen())
		}
		return &rsa.PublicKey{N: n, E: int(e.Int64())}, nil
	case dnswire.AlgECDSAP256SHA256:
		if len(b) != 64 {
			return nil, ErrBadPublicKey
		}
		x := new(big.Int).SetBytes(b[:32])
		y := new(big.Int).SetBytes(b[32:])
		pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
		// Reject points not on the curve rather than failing at verify time.
		if !pub.Curve.IsOnCurve(x, y) {
			return nil, fmt.Errorf("%w: point not on P-256", ErrBadPublicKey)
		}
		return pub, nil
	case dnswire.AlgED25519:
		if len(b) != ed25519.PublicKeySize {
			return nil, ErrBadPublicKey
		}
		return ed25519.PublicKey(append([]byte(nil), b...)), nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnsupportedAlgorithm, dk.Algorithm)
}
