package dnssec

import (
	"bytes"
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// Errors returned by signing and verification.
var (
	ErrEmptyRRSet        = errors.New("dnssec: empty RRset")
	ErrMixedRRSet        = errors.New("dnssec: RRset mixes names, types or classes")
	ErrSignatureInvalid  = errors.New("dnssec: signature verification failed")
	ErrSignatureExpired  = errors.New("dnssec: signature outside validity window")
	ErrKeyTagMismatch    = errors.New("dnssec: RRSIG key tag does not match DNSKEY")
	ErrAlgorithmMismatch = errors.New("dnssec: RRSIG algorithm does not match DNSKEY")
	ErrSignerMismatch    = errors.New("dnssec: RRSIG signer is not an ancestor of the owner")
	ErrNotZoneKey        = errors.New("dnssec: DNSKEY lacks the zone key flag")
)

// canonicalRRSetWire returns the canonical wire form of an RRset for
// signature computation (RFC 4034 section 3.1.8.1): each RR rendered with
// uncompressed lowercase owner, the RRSIG's OriginalTTL, and the records
// sorted by canonical RDATA ordering (section 6.3).
func canonicalRRSetWire(rrs []*dnswire.RR, originalTTL uint32) ([]byte, error) {
	if len(rrs) == 0 {
		return nil, ErrEmptyRRSet
	}
	name, typ, class := rrs[0].Name, rrs[0].Type, rrs[0].Class
	type entry struct{ wire []byte }
	entries := make([]entry, 0, len(rrs))
	for _, rr := range rrs {
		if rr.Name != name || rr.Type != typ || rr.Class != class {
			return nil, fmt.Errorf("%w: %s/%s vs %s/%s", ErrMixedRRSet, rr.Name, rr.Type, name, typ)
		}
		canon := &dnswire.RR{Name: rr.Name, Type: rr.Type, Class: rr.Class, TTL: originalTTL, Data: rr.Data}
		w, err := canon.CanonicalWire()
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{wire: w})
	}
	// Canonical RRset ordering sorts by RDATA as an octet string. Since the
	// owner/type/class/TTL/rdlen prefix is identical across the set,
	// comparing whole records yields the same order.
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].wire, entries[j].wire) < 0
	})
	var out []byte
	var prev []byte
	for _, e := range entries {
		if prev != nil && bytes.Equal(prev, e.wire) {
			continue // duplicate RRs are counted once (RFC 4034 section 6.3)
		}
		out = append(out, e.wire...)
		prev = e.wire
	}
	return out, nil
}

// signedData assembles the exact octet string that is signed: the RRSIG
// RDATA prefix followed by the canonical RRset.
func signedData(sig *dnswire.RRSIG, rrs []*dnswire.RR) ([]byte, error) {
	rrsWire, err := canonicalRRSetWire(rrs, sig.OriginalTTL)
	if err != nil {
		return nil, err
	}
	data := sig.AppendSignedFields(nil)
	return append(data, rrsWire...), nil
}

// SignOptions control RRSIG generation.
type SignOptions struct {
	// Inception and Expiration bound the signature validity window.
	Inception, Expiration time.Time
	// TTL overrides the RRSIG (and OriginalTTL) value; when zero the TTL of
	// the first record in the set is used.
	TTL uint32
}

// SignRRSet produces an RRSIG record over rrs using key, with signerZone as
// the signer name (the apex of the signing zone).
func SignRRSet(rrs []*dnswire.RR, key *KeyPair, signerZone string, opts SignOptions) (*dnswire.RR, error) {
	if len(rrs) == 0 {
		return nil, ErrEmptyRRSet
	}
	owner := rrs[0].Name
	if !dnswire.IsSubdomain(owner, dnswire.CanonicalName(signerZone)) {
		return nil, fmt.Errorf("%w: %q not under %q", ErrSignerMismatch, owner, signerZone)
	}
	ttl := opts.TTL
	if ttl == 0 {
		ttl = rrs[0].TTL
	}
	sig := &dnswire.RRSIG{
		TypeCovered: rrs[0].Type,
		Algorithm:   key.Algorithm,
		Labels:      uint8(dnswire.CountLabels(owner)),
		OriginalTTL: ttl,
		Expiration:  uint32(opts.Expiration.Unix()),
		Inception:   uint32(opts.Inception.Unix()),
		KeyTag:      key.KeyTag(),
		SignerName:  dnswire.CanonicalName(signerZone),
	}
	data, err := signedData(sig, rrs)
	if err != nil {
		return nil, err
	}
	sig.Signature, err = signDigest(key, data)
	if err != nil {
		return nil, err
	}
	return dnswire.NewRR(owner, ttl, sig), nil
}

// signDigest hashes data per the key's algorithm and signs it, producing the
// DNSSEC wire-format signature.
func signDigest(key *KeyPair, data []byte) ([]byte, error) {
	switch key.Algorithm {
	case dnswire.AlgRSASHA256:
		h := sha256.Sum256(data)
		return key.signer.(*rsa.PrivateKey).Sign(rand.Reader, h[:], crypto.SHA256)
	case dnswire.AlgECDSAP256SHA256:
		h := sha256.Sum256(data)
		r, s, err := ecdsa.Sign(rand.Reader, key.signer.(*ecdsa.PrivateKey), h[:])
		if err != nil {
			return nil, err
		}
		out := make([]byte, 64) // RFC 6605: r | s, 32 octets each
		r.FillBytes(out[:32])
		s.FillBytes(out[32:])
		return out, nil
	case dnswire.AlgED25519:
		return ed25519.Sign(key.signer.(ed25519.PrivateKey), data), nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnsupportedAlgorithm, key.Algorithm)
}

// VerifyRRSet checks sig over rrs against the public key in dk, evaluating
// the validity window at time now.
func VerifyRRSet(rrs []*dnswire.RR, sig *dnswire.RRSIG, dk *dnswire.DNSKEY, now time.Time) error {
	if len(rrs) == 0 {
		return ErrEmptyRRSet
	}
	if !dk.IsZoneKey() {
		return ErrNotZoneKey
	}
	if sig.Algorithm != dk.Algorithm {
		return ErrAlgorithmMismatch
	}
	if sig.KeyTag != dk.KeyTag() {
		return ErrKeyTagMismatch
	}
	if sig.TypeCovered != rrs[0].Type {
		return fmt.Errorf("dnssec: RRSIG covers %v, RRset is %v", sig.TypeCovered, rrs[0].Type)
	}
	if !dnswire.IsSubdomain(rrs[0].Name, sig.SignerName) {
		return ErrSignerMismatch
	}
	if !sig.ValidAt(now) {
		return fmt.Errorf("%w: [%d, %d] at %d", ErrSignatureExpired, sig.Inception, sig.Expiration, now.Unix())
	}
	data, err := signedData(sig, rrs)
	if err != nil {
		return err
	}
	pub, err := ParsePublicKey(dk)
	if err != nil {
		return err
	}
	switch dk.Algorithm {
	case dnswire.AlgRSASHA256:
		h := sha256.Sum256(data)
		if err := rsa.VerifyPKCS1v15(pub.(*rsa.PublicKey), crypto.SHA256, h[:], sig.Signature); err != nil {
			return ErrSignatureInvalid
		}
	case dnswire.AlgECDSAP256SHA256:
		if len(sig.Signature) != 64 {
			return ErrSignatureInvalid
		}
		h := sha256.Sum256(data)
		r := new(big.Int).SetBytes(sig.Signature[:32])
		s := new(big.Int).SetBytes(sig.Signature[32:])
		if !ecdsa.Verify(pub.(*ecdsa.PublicKey), h[:], r, s) {
			return ErrSignatureInvalid
		}
	case dnswire.AlgED25519:
		if !ed25519.Verify(pub.(ed25519.PublicKey), data, sig.Signature) {
			return ErrSignatureInvalid
		}
	default:
		return fmt.Errorf("%w: %v", ErrUnsupportedAlgorithm, dk.Algorithm)
	}
	return nil
}

// VerifyWithAnyKey tries every DNSKEY in keys whose tag and algorithm match
// the signature; it succeeds if any verifies.
func VerifyWithAnyKey(rrs []*dnswire.RR, sig *dnswire.RRSIG, keys []*dnswire.DNSKEY, now time.Time) error {
	var lastErr error = ErrKeyTagMismatch
	for _, dk := range keys {
		if dk.KeyTag() != sig.KeyTag || dk.Algorithm != sig.Algorithm {
			continue
		}
		if err := VerifyRRSet(rrs, sig, dk, now); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}
