package dnssec

import (
	"errors"
	"fmt"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// Authenticated denial of existence (RFC 4035 section 5.4): verifying from
// NSEC records that a name or type provably does not exist in a signed
// zone. The validator uses this to distinguish a genuine NXDOMAIN from one
// forged by an attacker — the class of attack (cache poisoning, hijacking)
// that motivates DNSSEC in the first place.

// Errors returned by denial verification.
var (
	ErrNoDenialProof  = errors.New("dnssec: no NSEC record covers the name")
	ErrTypeNotDenied  = errors.New("dnssec: NSEC proves the type exists")
	ErrDenialUnsigned = errors.New("dnssec: denial NSEC is not validly signed")
)

// DenialProof is one NSEC record with its signatures, as extracted from an
// authority section.
type DenialProof struct {
	Owner string
	NSEC  *dnswire.NSEC
	RRs   []*dnswire.RR // the NSEC RRset (for signature verification)
	Sigs  []*dnswire.RRSIG
}

// ExtractDenialProofs collects the NSEC records (and their RRSIGs) from an
// authority section.
func ExtractDenialProofs(authority []*dnswire.RR) []*DenialProof {
	byOwner := map[string]*DenialProof{}
	var order []string
	for _, rr := range authority {
		if nsec, ok := rr.Data.(*dnswire.NSEC); ok {
			p, exists := byOwner[rr.Name]
			if !exists {
				p = &DenialProof{Owner: rr.Name, NSEC: nsec}
				byOwner[rr.Name] = p
				order = append(order, rr.Name)
			}
			p.RRs = append(p.RRs, rr)
		}
	}
	for _, rr := range authority {
		if sig, ok := rr.Data.(*dnswire.RRSIG); ok && sig.TypeCovered == dnswire.TypeNSEC {
			if p, exists := byOwner[rr.Name]; exists {
				p.Sigs = append(p.Sigs, sig)
			}
		}
	}
	out := make([]*DenialProof, 0, len(order))
	for _, owner := range order {
		out = append(out, byOwner[owner])
	}
	return out
}

// Covers reports whether the proof's (owner, next) interval contains qname
// in canonical order, with wrap-around for the chain's last record.
func (p *DenialProof) Covers(qname string) bool {
	cmpOwner := dnswire.CompareCanonical(p.Owner, qname)
	cmpNext := dnswire.CompareCanonical(qname, p.NSEC.NextName)
	if dnswire.CompareCanonical(p.Owner, p.NSEC.NextName) < 0 {
		return cmpOwner < 0 && cmpNext < 0
	}
	return cmpOwner < 0 || cmpNext < 0
}

// VerifyNameDenial checks that the NSEC proofs authenticate the
// nonexistence of qname: some validly signed NSEC must cover it.
func VerifyNameDenial(qname string, proofs []*DenialProof, keys []*dnswire.DNSKEY, now time.Time) error {
	qname = dnswire.CanonicalName(qname)
	for _, p := range proofs {
		if !p.Covers(qname) {
			continue
		}
		if err := verifyProofSig(p, keys, now); err != nil {
			return err
		}
		return nil
	}
	return fmt.Errorf("%w: %s", ErrNoDenialProof, qname)
}

// VerifyTypeDenial checks a NODATA response: an NSEC at qname itself whose
// type bitmap excludes t, validly signed.
func VerifyTypeDenial(qname string, t dnswire.Type, proofs []*DenialProof, keys []*dnswire.DNSKEY, now time.Time) error {
	qname = dnswire.CanonicalName(qname)
	for _, p := range proofs {
		if p.Owner != qname {
			continue
		}
		for _, present := range p.NSEC.Types {
			if present == t {
				return fmt.Errorf("%w: %v at %s", ErrTypeNotDenied, t, qname)
			}
		}
		if err := verifyProofSig(p, keys, now); err != nil {
			return err
		}
		return nil
	}
	return fmt.Errorf("%w: no NSEC at %s", ErrNoDenialProof, qname)
}

func verifyProofSig(p *DenialProof, keys []*dnswire.DNSKEY, now time.Time) error {
	for _, sig := range p.Sigs {
		if VerifyWithAnyKey(p.RRs, sig, keys, now) == nil {
			return nil
		}
	}
	return fmt.Errorf("%w: owner %s", ErrDenialUnsigned, p.Owner)
}
