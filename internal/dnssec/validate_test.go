package dnssec

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// memFetcher is a hand-built Fetcher over a static record store, used to
// exercise the validator without the zone or server layers.
type memFetcher struct {
	sets map[string]*RRSet // key: name|type
	cuts map[string][]string
	err  error
}

func rkey(name string, t dnswire.Type) string { return name + "|" + t.String() }

func (f *memFetcher) FetchRRSet(_ context.Context, name string, t dnswire.Type) (*RRSet, error) {
	if f.err != nil {
		return nil, f.err
	}
	if s, ok := f.sets[rkey(name, t)]; ok {
		return s, nil
	}
	return &RRSet{}, nil
}

func (f *memFetcher) Cuts(_ context.Context, name string) ([]string, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.cuts[name], nil
}

func (f *memFetcher) put(name string, rrs []*dnswire.RR, sigs ...*dnswire.RR) {
	set := &RRSet{RRs: rrs}
	for _, s := range sigs {
		set.Sigs = append(set.Sigs, s.Data.(*dnswire.RRSIG))
	}
	f.sets[rkey(name, rrs[0].Type)] = set
}

// chainWorld wires a signed root → org → example.org hierarchy.
type chainWorld struct {
	fetcher *memFetcher
	anchor  []*dnswire.DS
	keys    map[string]*KeyPair // zone → ZSK/KSK combined key
}

// buildChain constructs a fully signed three-level hierarchy. Each zone uses
// a single CSK (combined KSK+ZSK) for brevity; the validator does not care.
func buildChain(t *testing.T) *chainWorld {
	t.Helper()
	w := &chainWorld{
		fetcher: &memFetcher{sets: map[string]*RRSet{}, cuts: map[string][]string{}},
		keys:    map[string]*KeyPair{},
	}
	zones := []string{"", "org", "example.org"}
	for _, z := range zones {
		w.keys[z] = genKey(t, dnswire.AlgED25519, dnswire.FlagsKSK)
	}
	// DNSKEY RRsets, self-signed.
	for _, z := range zones {
		keyRR := w.keys[z].RR(z, 3600)
		sig, err := SignRRSet([]*dnswire.RR{keyRR}, w.keys[z], z, testWindow)
		if err != nil {
			t.Fatal(err)
		}
		w.fetcher.put(z, []*dnswire.RR{keyRR}, sig)
	}
	// DS records in the parents, signed by the parent.
	for i := 1; i < len(zones); i++ {
		child, parent := zones[i], zones[i-1]
		ds, err := ComputeDS(child, w.keys[child].DNSKEY(), dnswire.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
		dsRR := dnswire.NewRR(child, 3600, ds)
		sig, err := SignRRSet([]*dnswire.RR{dsRR}, w.keys[parent], parent, testWindow)
		if err != nil {
			t.Fatal(err)
		}
		w.fetcher.put(child, []*dnswire.RR{dsRR}, sig)
	}
	// Trust anchor: DS of the root key.
	rootDS, err := ComputeDS("", w.keys[""].DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	w.anchor = []*dnswire.DS{rootDS}
	// Target data in example.org.
	a := dnswire.NewRR("www.example.org", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.10")})
	sig, err := SignRRSet([]*dnswire.RR{a}, w.keys["example.org"], "example.org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	w.fetcher.put("www.example.org", []*dnswire.RR{a}, sig)
	w.fetcher.cuts["www.example.org"] = []string{"", "org", "example.org"}
	return w
}

func (w *chainWorld) validator() *Validator {
	return &Validator{Anchor: w.anchor, Fetch: w.fetcher, Now: func() time.Time { return testNow }}
}

func TestValidateSecureChain(t *testing.T) {
	w := buildChain(t)
	res, err := w.validator().Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Secure {
		t.Fatalf("Status = %v (%s), want secure", res.Status, res.Reason)
	}
	if len(res.Chain) != 3 {
		t.Errorf("chain has %d links", len(res.Chain))
	}
	for _, link := range res.Chain {
		if !link.HasDS || !link.HasDNSKEY || !link.DSMatches || !link.KeysValid {
			t.Errorf("link %+v incomplete", link)
		}
	}
}

func TestValidateInsecureWithoutDS(t *testing.T) {
	w := buildChain(t)
	// Remove the DS for example.org: the classic partial deployment.
	delete(w.fetcher.sets, rkey("example.org", dnswire.TypeDS))
	res, err := w.validator().Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Insecure {
		t.Fatalf("Status = %v (%s), want insecure", res.Status, res.Reason)
	}
}

func TestValidateBogusMismatchedDS(t *testing.T) {
	w := buildChain(t)
	// Replace the example.org DS with a digest of an unrelated key — what a
	// registrar that accepts arbitrary DS uploads lets happen.
	stranger := genKey(t, dnswire.AlgED25519, dnswire.FlagsKSK)
	ds, err := ComputeDS("example.org", stranger.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	dsRR := dnswire.NewRR("example.org", 3600, ds)
	sig, err := SignRRSet([]*dnswire.RR{dsRR}, w.keys["org"], "org", testWindow)
	if err != nil {
		t.Fatal(err)
	}
	w.fetcher.put("example.org", []*dnswire.RR{dsRR}, sig)
	res, err := w.validator().Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Bogus {
		t.Fatalf("Status = %v (%s), want bogus", res.Status, res.Reason)
	}
}

func TestValidateBogusExpired(t *testing.T) {
	w := buildChain(t)
	v := w.validator()
	v.Now = func() time.Time { return testWindow.Expiration.Add(48 * time.Hour) }
	res, err := v.Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Bogus {
		t.Fatalf("Status = %v (%s), want bogus after expiry", res.Status, res.Reason)
	}
}

func TestValidateBogusUnsignedTarget(t *testing.T) {
	w := buildChain(t)
	set := w.fetcher.sets[rkey("www.example.org", dnswire.TypeA)]
	set.Sigs = nil
	res, err := w.validator().Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Bogus {
		t.Fatalf("Status = %v (%s), want bogus", res.Status, res.Reason)
	}
}

func TestValidateBogusMissingDNSKEY(t *testing.T) {
	w := buildChain(t)
	delete(w.fetcher.sets, rkey("example.org", dnswire.TypeDNSKEY))
	res, err := w.validator().Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Bogus {
		t.Fatalf("Status = %v (%s), want bogus: DS without DNSKEY", res.Status, res.Reason)
	}
}

func TestValidateIndeterminateOnFetchError(t *testing.T) {
	w := buildChain(t)
	w.fetcher.err = errors.New("network unreachable")
	res, _ := w.validator().Validate(context.Background(), "www.example.org", dnswire.TypeA)
	if res.Status != Indeterminate {
		t.Fatalf("Status = %v, want indeterminate", res.Status)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		hasKey, hasDS, valid bool
		want                 Deployment
	}{
		{false, false, false, DeploymentNone},
		{true, false, false, DeploymentPartial},
		{true, true, true, DeploymentFull},
		{true, true, false, DeploymentBroken},
		{false, true, false, DeploymentBroken}, // DS without DNSKEY breaks resolution
	}
	for _, c := range cases {
		if got := Classify(c.hasKey, c.hasDS, c.valid); got != c.want {
			t.Errorf("Classify(%v,%v,%v) = %v, want %v", c.hasKey, c.hasDS, c.valid, got, c.want)
		}
	}
}

func TestStatusAndDeploymentStrings(t *testing.T) {
	if Secure.String() != "secure" || Bogus.String() != "bogus" ||
		Insecure.String() != "insecure" || Indeterminate.String() != "indeterminate" {
		t.Error("Status strings")
	}
	if DeploymentNone.String() != "none" || DeploymentPartial.String() != "partial" ||
		DeploymentFull.String() != "full" || DeploymentBroken.String() != "broken" {
		t.Error("Deployment strings")
	}
}

func TestDSComputeAndMatch(t *testing.T) {
	key := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.FlagsKSK)
	for _, dt := range []dnswire.DigestType{dnswire.DigestSHA1, dnswire.DigestSHA256, dnswire.DigestSHA384} {
		ds, err := ComputeDS("example.com", key.DNSKEY(), dt)
		if err != nil {
			t.Fatalf("ComputeDS(%v): %v", dt, err)
		}
		wantLen := map[dnswire.DigestType]int{
			dnswire.DigestSHA1: 20, dnswire.DigestSHA256: 32, dnswire.DigestSHA384: 48,
		}[dt]
		if len(ds.Digest) != wantLen {
			t.Errorf("%v digest length %d, want %d", dt, len(ds.Digest), wantLen)
		}
		if !MatchDS("example.com", ds, key.DNSKEY()) {
			t.Errorf("%v: MatchDS rejects its own digest", dt)
		}
		// The owner name is part of the digest: same key at another name
		// must not match.
		if MatchDS("other.com", ds, key.DNSKEY()) {
			t.Errorf("%v: DS matched under wrong owner", dt)
		}
	}
	if _, err := ComputeDS("example.com", key.DNSKEY(), dnswire.DigestType(9)); err == nil {
		t.Error("unknown digest type accepted")
	}
	// A garbage DS (what most registrars in the study accept) must not match.
	garbage := &dnswire.DS{KeyTag: 1, Algorithm: key.Algorithm, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if MatchDS("example.com", garbage, key.DNSKEY()) {
		t.Error("garbage DS matched")
	}
	if MatchAnyDS("example.com", []*dnswire.DS{garbage}, []*dnswire.DNSKEY{key.DNSKEY()}) {
		t.Error("MatchAnyDS matched garbage")
	}
	good, _ := ComputeDS("example.com", key.DNSKEY(), dnswire.DigestSHA256)
	if !MatchAnyDS("example.com", []*dnswire.DS{garbage, good}, []*dnswire.DNSKEY{key.DNSKEY()}) {
		t.Error("MatchAnyDS missed the good DS")
	}
}

func TestDSFromCDS(t *testing.T) {
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsKSK)
	ds, err := ComputeDS("example.org", key.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	out, remove := DSFromCDS([]*dnswire.CDS{{DS: *ds}})
	if remove || len(out) != 1 || !MatchDS("example.org", out[0], key.DNSKEY()) {
		t.Errorf("DSFromCDS: %v remove=%v", out, remove)
	}
	// RFC 8078 delete sentinel.
	_, remove = DSFromCDS([]*dnswire.CDS{{DS: dnswire.DS{Algorithm: dnswire.AlgDelete, Digest: []byte{0}}}})
	if !remove {
		t.Error("delete sentinel not recognized")
	}
}
