package dnssec

import (
	"context"
	"fmt"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// Status is the DNSSEC validation outcome for an RRset, following the
// RFC 4035 section 4.3 vocabulary.
type Status int

const (
	// Indeterminate: validation could not run (e.g. lookup failure).
	Indeterminate Status = iota
	// Insecure: some zone in the chain has no DS RRset, so the target is
	// provably outside the signed part of the tree.
	Insecure
	// Bogus: records exist that should validate but do not (bad signature,
	// mismatched DS, expired RRSIG, missing DNSKEY).
	Bogus
	// Secure: an unbroken chain of trust from the anchor validates the
	// target RRset.
	Secure
)

// String returns the conventional name of the status.
func (s Status) String() string {
	switch s {
	case Secure:
		return "secure"
	case Insecure:
		return "insecure"
	case Bogus:
		return "bogus"
	}
	return "indeterminate"
}

// Deployment is the paper's classification of a domain's DNSSEC state
// (section 2, Figure 1).
type Deployment int

const (
	// DeploymentNone: no DNSKEY published.
	DeploymentNone Deployment = iota
	// DeploymentPartial: DNSKEY and RRSIGs published but no DS at the parent
	// — the chain of trust is broken and validation is impossible, so the
	// deployment has "limited value".
	DeploymentPartial
	// DeploymentFull: DNSKEY, RRSIGs and a matching DS exist; the chain
	// validates.
	DeploymentFull
	// DeploymentBroken: records exist on both sides but do not validate
	// (e.g. a registrar installed a garbage DS) — worse than no DNSSEC,
	// because validating resolvers will refuse to resolve the domain.
	DeploymentBroken
)

// String returns the classification name.
func (d Deployment) String() string {
	switch d {
	case DeploymentPartial:
		return "partial"
	case DeploymentFull:
		return "full"
	case DeploymentBroken:
		return "broken"
	}
	return "none"
}

// Classify derives the deployment class from observed record presence and
// chain validity.
func Classify(hasDNSKEY, hasDS, chainValid bool) Deployment {
	switch {
	case !hasDNSKEY && !hasDS:
		return DeploymentNone
	case hasDNSKEY && !hasDS:
		return DeploymentPartial
	case chainValid:
		return DeploymentFull
	default:
		return DeploymentBroken
	}
}

// RRSet groups the records of one (name, type) together with their
// signatures, as fetched from the DNS. For negative answers, Authority
// carries the response's authority section (SOA plus NSEC/NSEC3 proofs) and
// NXDomain records the rcode, so the validator can authenticate the denial.
type RRSet struct {
	RRs  []*dnswire.RR
	Sigs []*dnswire.RRSIG
	// Authority is the authority section of the response (negative answers).
	Authority []*dnswire.RR
	// NXDomain is set when the response rcode was NXDOMAIN.
	NXDomain bool
}

// Empty reports whether the set holds no records.
func (s *RRSet) Empty() bool { return s == nil || len(s.RRs) == 0 }

// Fetcher supplies the validator with RRsets and with the zone-cut structure
// of the namespace. A validating resolver implements this against live
// servers; tests implement it over in-memory zones.
type Fetcher interface {
	// FetchRRSet returns the RRset (with signatures) for name/type. A
	// nonexistent RRset is returned as an empty, non-error result.
	FetchRRSet(ctx context.Context, name string, t dnswire.Type) (*RRSet, error)
	// Cuts returns the chain of zone apexes from the root to the zone
	// containing name, e.g. ["", "com", "example.com"] for
	// "www.example.com".
	Cuts(ctx context.Context, name string) ([]string, error)
}

// ZoneLink describes the validation evidence for one zone in the chain.
type ZoneLink struct {
	Zone      string
	HasDS     bool // DS RRset present at the parent
	HasDNSKEY bool
	DSMatches bool // some DS matches some DNSKEY
	KeysValid bool // DNSKEY RRset self-signature verifies
	SigError  string
}

// Result is the full outcome of a chain validation.
type Result struct {
	Status Status
	// Reason is a human-readable explanation for non-Secure outcomes.
	Reason string
	// Chain holds one link per zone from the root to the target's zone.
	Chain []ZoneLink
}

// Validator walks chains of trust from a configured trust anchor.
type Validator struct {
	// Anchor is the trusted DS set for the root zone (analogous to the root
	// trust anchor distributed with resolvers).
	Anchor []*dnswire.DS
	// Fetch supplies records.
	Fetch Fetcher
	// Now supplies the validation time; time.Now when nil.
	Now func() time.Time
}

func (v *Validator) now() time.Time {
	if v.Now != nil {
		return v.Now()
	}
	return time.Now()
}

// ValidateZoneKeys establishes the validated DNSKEY RRset of zone: the DS
// from the parent (or the anchor for the root) must match a KSK, and the
// DNSKEY RRset must verify under that RRset's own keys.
func (v *Validator) validateZoneKeys(ctx context.Context, zone string, parentDS []*dnswire.DS, link *ZoneLink) ([]*dnswire.DNSKEY, error) {
	keySet, err := v.Fetch.FetchRRSet(ctx, zone, dnswire.TypeDNSKEY)
	if err != nil {
		return nil, fmt.Errorf("fetching DNSKEY %s: %w", zone, err)
	}
	if keySet.Empty() {
		return nil, nil
	}
	link.HasDNSKEY = true
	keys := make([]*dnswire.DNSKEY, 0, len(keySet.RRs))
	for _, rr := range keySet.RRs {
		if dk, ok := rr.Data.(*dnswire.DNSKEY); ok {
			keys = append(keys, dk)
		}
	}
	if !MatchAnyDS(zone, parentDS, keys) {
		return keys, nil
	}
	link.DSMatches = true
	now := v.now()
	for _, sig := range keySet.Sigs {
		if err := VerifyWithAnyKey(keySet.RRs, sig, keys, now); err == nil {
			link.KeysValid = true
			return keys, nil
		} else if link.SigError == "" {
			link.SigError = err.Error()
		}
	}
	if len(keySet.Sigs) == 0 {
		link.SigError = "DNSKEY RRset is unsigned"
	}
	return keys, nil
}

// Validate checks the chain of trust for the RRset (name, t) and, when the
// chain is intact, verifies the target RRset itself.
func (v *Validator) Validate(ctx context.Context, name string, t dnswire.Type) (*Result, error) {
	name = dnswire.CanonicalName(name)
	cuts, err := v.Fetch.Cuts(ctx, name)
	if err != nil {
		return &Result{Status: Indeterminate, Reason: err.Error()}, err
	}
	res := &Result{}
	ds := v.Anchor
	var zoneKeys []*dnswire.DNSKEY
	for i, zone := range cuts {
		link := ZoneLink{Zone: zone, HasDS: len(ds) > 0}
		if len(ds) == 0 {
			// The parent did not delegate securely: everything below is
			// provably insecure.
			res.Chain = append(res.Chain, link)
			res.Status = Insecure
			res.Reason = fmt.Sprintf("no DS for zone %q", present(zone))
			return res, nil
		}
		keys, err := v.validateZoneKeys(ctx, zone, ds, &link)
		if err != nil {
			res.Chain = append(res.Chain, link)
			res.Status = Indeterminate
			res.Reason = err.Error()
			return res, nil
		}
		if !link.HasDNSKEY {
			res.Chain = append(res.Chain, link)
			res.Status = Bogus
			res.Reason = fmt.Sprintf("zone %q has DS but no DNSKEY", present(zone))
			return res, nil
		}
		if !link.DSMatches {
			res.Chain = append(res.Chain, link)
			res.Status = Bogus
			res.Reason = fmt.Sprintf("no DS matches a DNSKEY of %q", present(zone))
			return res, nil
		}
		if !link.KeysValid {
			res.Chain = append(res.Chain, link)
			res.Status = Bogus
			res.Reason = fmt.Sprintf("DNSKEY RRset of %q does not verify: %s", present(zone), link.SigError)
			return res, nil
		}
		res.Chain = append(res.Chain, link)
		zoneKeys = keys
		if i == len(cuts)-1 {
			break
		}
		// Fetch the DS set the current zone publishes for the next cut.
		child := cuts[i+1]
		dsSet, err := v.Fetch.FetchRRSet(ctx, child, dnswire.TypeDS)
		if err != nil {
			res.Status = Indeterminate
			res.Reason = err.Error()
			return res, nil
		}
		if !dsSet.Empty() {
			// The DS RRset lives in the parent zone and must verify under
			// the parent's keys.
			ok := false
			var sigErr string
			for _, sig := range dsSet.Sigs {
				if err := VerifyWithAnyKey(dsSet.RRs, sig, zoneKeys, v.now()); err == nil {
					ok = true
					break
				} else {
					sigErr = err.Error()
				}
			}
			if !ok {
				res.Status = Bogus
				res.Reason = fmt.Sprintf("DS RRset for %q does not verify: %s", child, sigErr)
				return res, nil
			}
		}
		ds = nil
		for _, rr := range dsSet.RRs {
			if d, ok := rr.Data.(*dnswire.DS); ok {
				ds = append(ds, d)
			}
		}
	}
	// Chain is intact down to the target's zone; verify the target RRset.
	target, err := v.Fetch.FetchRRSet(ctx, name, t)
	if err != nil {
		res.Status = Indeterminate
		res.Reason = err.Error()
		return res, nil
	}
	if target.Empty() {
		// Negative answer under an intact chain: grade the denial proof.
		res.Status, res.Reason = v.gradeDenial(name, t, cuts[len(cuts)-1], target, zoneKeys)
		return res, nil
	}
	now := v.now()
	for _, sig := range target.Sigs {
		if err := VerifyWithAnyKey(target.RRs, sig, zoneKeys, now); err == nil {
			res.Status = Secure
			return res, nil
		} else {
			res.Reason = err.Error()
		}
	}
	res.Status = Bogus
	if res.Reason == "" {
		res.Reason = fmt.Sprintf("RRset %s/%v is unsigned in a signed zone", name, t)
	}
	return res, nil
}

// gradeDenial authenticates a negative answer using the NSEC or NSEC3
// records in the authority section (RFC 4035 section 5.4, RFC 5155 section
// 8). Zones signed without denial chains yield Indeterminate — the records
// are absent, not forged — which is how several measurement tools grade
// "insecure denial" too.
func (v *Validator) gradeDenial(name string, t dnswire.Type, zone string, target *RRSet, zoneKeys []*dnswire.DNSKEY) (Status, string) {
	now := v.now()
	// NSEC3 takes precedence when present.
	if n3 := ExtractNSEC3Proofs(target.Authority); len(n3) > 0 {
		params := nsec3ParamsFromProofs(n3)
		var err error
		if target.NXDomain {
			err = VerifyNameDenialNSEC3(name, zone, params, n3, zoneKeys, now)
		} else {
			err = VerifyTypeDenialNSEC3(name, t, params, n3, zoneKeys, now)
		}
		if err != nil {
			return Bogus, fmt.Sprintf("NSEC3 denial of %s/%v does not verify: %v", name, t, err)
		}
		return Secure, "denial of existence proven (NSEC3)"
	}
	if proofs := ExtractDenialProofs(target.Authority); len(proofs) > 0 {
		var err error
		if target.NXDomain {
			err = VerifyNameDenial(name, proofs, zoneKeys, now)
		} else {
			err = VerifyTypeDenial(name, t, proofs, zoneKeys, now)
		}
		if err != nil {
			return Bogus, fmt.Sprintf("NSEC denial of %s/%v does not verify: %v", name, t, err)
		}
		return Secure, "denial of existence proven (NSEC)"
	}
	return Indeterminate, fmt.Sprintf("no data for %s/%v and no denial proof offered", name, t)
}

// nsec3ParamsFromProofs reconstructs the NSEC3 parameters from the proofs
// themselves (every record carries them).
func nsec3ParamsFromProofs(proofs []*NSEC3Proof) *dnswire.NSEC3PARAM {
	p := proofs[0].NSEC3
	return &dnswire.NSEC3PARAM{
		HashAlg: p.HashAlg, Iterations: p.Iterations,
		Salt: append([]byte(nil), p.Salt...),
	}
}

func present(zone string) string {
	if zone == "" {
		return "."
	}
	return zone
}
