package dnssec

import (
	"bytes"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"fmt"

	"securepki.org/registrarsec/internal/dnswire"
)

// ComputeDS derives the DS record for a child zone's DNSKEY (RFC 4034
// section 5.1.4): digest over the owner name in canonical wire form
// concatenated with the DNSKEY RDATA.
func ComputeDS(childZone string, dk *dnswire.DNSKEY, dt dnswire.DigestType) (*dnswire.DS, error) {
	childZone = dnswire.CanonicalName(childZone)
	rr := dnswire.NewRR(childZone, 0, dk)
	wire, err := rr.CanonicalWire()
	if err != nil {
		return nil, err
	}
	// CanonicalWire is name | type | class | ttl | rdlen | rdata; the DS
	// digest input is name | rdata, so carve both pieces out.
	nameLen := wireNameLen(childZone)
	input := append(append([]byte(nil), wire[:nameLen]...), wire[nameLen+10:]...)
	var digest []byte
	switch dt {
	case dnswire.DigestSHA1:
		h := sha1.Sum(input)
		digest = h[:]
	case dnswire.DigestSHA256:
		h := sha256.Sum256(input)
		digest = h[:]
	case dnswire.DigestSHA384:
		h := sha512.Sum384(input)
		digest = h[:]
	default:
		return nil, fmt.Errorf("dnssec: unsupported digest type %v", dt)
	}
	return &dnswire.DS{
		KeyTag:     dk.KeyTag(),
		Algorithm:  dk.Algorithm,
		DigestType: dt,
		Digest:     digest,
	}, nil
}

// wireNameLen returns the wire length of a canonical name.
func wireNameLen(name string) int {
	if name == "" {
		return 1
	}
	return len(name) + 2
}

// MatchDS reports whether ds is a correct digest of dk at childZone. This is
// the check registrars should — but in the paper mostly do not — perform on
// customer-supplied DS records.
func MatchDS(childZone string, ds *dnswire.DS, dk *dnswire.DNSKEY) bool {
	if ds.KeyTag != dk.KeyTag() || ds.Algorithm != dk.Algorithm {
		return false
	}
	want, err := ComputeDS(childZone, dk, ds.DigestType)
	if err != nil {
		return false
	}
	return bytes.Equal(want.Digest, ds.Digest)
}

// MatchAnyDS reports whether any DS in the set matches any of the DNSKEYs.
// A chain of trust needs only one valid (DS, DNSKEY) pair.
func MatchAnyDS(childZone string, dss []*dnswire.DS, keys []*dnswire.DNSKEY) bool {
	for _, ds := range dss {
		for _, dk := range keys {
			if MatchDS(childZone, ds, dk) {
				return true
			}
		}
	}
	return false
}

// DSFromCDS converts a CDS RRset published by a child into the DS records a
// registry would install (RFC 7344/8078). It returns remove=true when the
// set is the RFC 8078 section 4 delete sentinel (algorithm 0).
func DSFromCDS(cds []*dnswire.CDS) (out []*dnswire.DS, remove bool) {
	for _, c := range cds {
		if c.Algorithm == dnswire.AlgDelete {
			return nil, true
		}
		d := c.DS
		d.Digest = append([]byte(nil), c.Digest...)
		out = append(out, &d)
	}
	return out, false
}
