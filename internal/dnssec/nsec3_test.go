package dnssec

import (
	"bytes"
	"crypto/sha1"
	"testing"

	"securepki.org/registrarsec/internal/dnswire"
)

func TestNSEC3HashReference(t *testing.T) {
	// Independent reference implementation of RFC 5155 section 5: the
	// production code must agree for assorted salts and iteration counts.
	ref := func(name string, salt []byte, iterations uint16) []byte {
		var wire []byte
		for _, label := range dnswire.SplitLabels(name) {
			wire = append(wire, byte(len(label)))
			wire = append(wire, label...)
		}
		wire = append(wire, 0)
		d := sha1.Sum(append(wire, salt...))
		out := d[:]
		for i := 0; i < int(iterations); i++ {
			d = sha1.Sum(append(out, salt...))
			out = d[:]
		}
		return out
	}
	cases := []struct {
		name       string
		salt       []byte
		iterations uint16
	}{
		{"example.com", nil, 0},
		{"example.com", []byte{0xaa, 0xbb, 0xcc, 0xdd}, 12},
		{"a.b.example.com", []byte{0x01}, 1},
		{"", nil, 5}, // the root
	}
	for _, c := range cases {
		got, err := NSEC3Hash(c.name, c.salt, c.iterations)
		if err != nil {
			t.Fatalf("NSEC3Hash(%q): %v", c.name, err)
		}
		if want := ref(c.name, c.salt, c.iterations); !bytes.Equal(got, want) {
			t.Errorf("NSEC3Hash(%q, %x, %d) = %x, want %x", c.name, c.salt, c.iterations, got, want)
		}
		if len(got) != sha1.Size {
			t.Errorf("hash length %d", len(got))
		}
	}
	// Hashing is case-insensitive via canonicalization.
	a, _ := NSEC3Hash("Example.COM", []byte{1}, 3)
	b, _ := NSEC3Hash("example.com", []byte{1}, 3)
	if !bytes.Equal(a, b) {
		t.Error("hash is case-sensitive")
	}
	// Different salt or iterations change the hash.
	c1, _ := NSEC3Hash("example.com", []byte{1}, 3)
	c2, _ := NSEC3Hash("example.com", []byte{2}, 3)
	c3, _ := NSEC3Hash("example.com", []byte{1}, 4)
	if bytes.Equal(c1, c2) || bytes.Equal(c1, c3) {
		t.Error("salt/iterations have no effect")
	}
}

func TestNSEC3OwnerName(t *testing.T) {
	owner, err := NSEC3OwnerName("www.example.com", "example.com", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dnswire.IsSubdomain(owner, "example.com") || owner == "example.com" {
		t.Errorf("owner %q not under the zone", owner)
	}
	labels := dnswire.SplitLabels(owner)
	if len(labels[0]) != 32 { // base32hex of 20 bytes
		t.Errorf("hash label length %d", len(labels[0]))
	}
	h, err := dnswire.Base32HexDecode(labels[0])
	if err != nil || len(h) != 20 {
		t.Errorf("label does not decode: %v", err)
	}
}

// buildNSEC3World signs a zone with an NSEC3 chain and returns denial
// machinery for the tests below.
func buildNSEC3World(t *testing.T) (params *dnswire.NSEC3PARAM, proofs []*NSEC3Proof, keys []*dnswire.DNSKEY) {
	t.Helper()
	params = &dnswire.NSEC3PARAM{
		HashAlg: dnswire.NSEC3HashSHA1, Iterations: 2, Salt: []byte{0xaa, 0xbb},
	}
	key := genKey(t, dnswire.AlgED25519, dnswire.FlagsZSK)
	keys = []*dnswire.DNSKEY{key.DNSKEY()}
	// Zone names: apex, alpha, www.
	zoneNames := []string{"example.org", "alpha.example.org", "www.example.org"}
	type entry struct {
		hash []byte
		name string
	}
	var entries []entry
	for _, n := range zoneNames {
		h, err := NSEC3Hash(n, params.Salt, params.Iterations)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{h, n})
	}
	// Sort by hash.
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if bytes.Compare(entries[j].hash, entries[i].hash) < 0 {
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
	}
	var authority []*dnswire.RR
	for i, e := range entries {
		next := entries[(i+1)%len(entries)]
		types := []dnswire.Type{dnswire.TypeA}
		if e.name == "example.org" {
			types = []dnswire.Type{dnswire.TypeSOA, dnswire.TypeNS, dnswire.TypeDNSKEY, dnswire.TypeNSEC3PARAM}
		}
		owner := dnswire.Base32HexEncode(e.hash) + ".example.org"
		rr := dnswire.NewRR(owner, 300, &dnswire.NSEC3{
			HashAlg: params.HashAlg, Iterations: params.Iterations,
			Salt: params.Salt, NextHashed: next.hash, Types: types,
		})
		sig, err := SignRRSet([]*dnswire.RR{rr}, key, "example.org", testWindow)
		if err != nil {
			t.Fatal(err)
		}
		authority = append(authority, rr, sig)
	}
	return params, ExtractNSEC3Proofs(authority), keys
}

func TestVerifyNameDenialNSEC3(t *testing.T) {
	params, proofs, keys := buildNSEC3World(t)
	if len(proofs) != 3 {
		t.Fatalf("proofs: %d", len(proofs))
	}
	// ghost.example.org does not exist: closest encloser is the apex,
	// next-closer is ghost itself.
	if err := VerifyNameDenialNSEC3("ghost.example.org", "example.org", params, proofs, keys, testNow); err != nil {
		t.Errorf("ghost denial: %v", err)
	}
	// deep.ghost.example.org: next-closer is ghost.example.org.
	if err := VerifyNameDenialNSEC3("deep.ghost.example.org", "example.org", params, proofs, keys, testNow); err != nil {
		t.Errorf("deep ghost denial: %v", err)
	}
	// An existing name must NOT be deniable.
	if err := VerifyNameDenialNSEC3("alpha.example.org", "example.org", params, proofs, keys, testNow); err == nil {
		t.Error("denied an existing name")
	}
	// Outside the zone.
	if err := VerifyNameDenialNSEC3("x.other.test", "example.org", params, proofs, keys, testNow); err == nil {
		t.Error("denial accepted for out-of-zone name")
	}
	// Unsupported hash algorithm.
	bad := *params
	bad.HashAlg = 9
	if err := VerifyNameDenialNSEC3("ghost.example.org", "example.org", &bad, proofs, keys, testNow); err == nil {
		t.Error("unknown hash algorithm accepted")
	}
}

func TestVerifyNameDenialNSEC3RejectsUnsigned(t *testing.T) {
	params, proofs, keys := buildNSEC3World(t)
	for _, p := range proofs {
		p.Sigs = nil
	}
	if err := VerifyNameDenialNSEC3("ghost.example.org", "example.org", params, proofs, keys, testNow); err == nil {
		t.Error("unsigned NSEC3 denial accepted")
	}
}

func TestVerifyTypeDenialNSEC3(t *testing.T) {
	params, proofs, keys := buildNSEC3World(t)
	// alpha has only A; MX is NODATA.
	if err := VerifyTypeDenialNSEC3("alpha.example.org", dnswire.TypeMX, params, proofs, keys, testNow); err != nil {
		t.Errorf("MX type denial: %v", err)
	}
	if err := VerifyTypeDenialNSEC3("alpha.example.org", dnswire.TypeA, params, proofs, keys, testNow); err == nil {
		t.Error("denied an existing type")
	}
	if err := VerifyTypeDenialNSEC3("ghost.example.org", dnswire.TypeA, params, proofs, keys, testNow); err == nil {
		t.Error("type denial for nonexistent name accepted")
	}
}
