// Package retry implements the bounded retry policy used by the resilient
// measurement path: exponential backoff with deterministic jitter, a
// per-query attempt budget, and deadline awareness. The OpenINTEL-style
// sweeps the paper relies on (section 4.1) run against infrastructure that
// times out, drops packets, and serves transient SERVFAILs; without a retry
// discipline every such event silently shrinks the dataset.
//
// The policy is deliberately deterministic: jitter is drawn from a seeded
// generator so two runs of the same sweep schedule identical delays, which
// keeps fault-injection tests exactly reproducible.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds the attempts made for one query.
type Policy struct {
	// MaxAttempts is the total attempt budget per query, first try
	// included (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// each further retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 500ms).
	MaxDelay time.Duration
	// JitterFrac scatters each delay uniformly in
	// [delay*(1-JitterFrac), delay*(1+JitterFrac)] (default 0.5).
	JitterFrac float64
	// Seed drives the jitter sequence; the zero seed is replaced by 1 so
	// the zero-value Policy is still deterministic.
	Seed int64
}

// Default returns the measurement path's standard policy: three attempts,
// 10ms base backoff doubling to a 500ms cap, ±50% jitter.
func Default() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond, JitterFrac: 0.5}
}

// withDefaults fills unset fields from Default.
func (p Policy) withDefaults() Policy {
	d := Default()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// delay computes the backoff before retry number n (1-based), jittered.
func (p Policy) delay(n int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 {
		span := float64(d) * p.JitterFrac
		d = time.Duration(float64(d) - span + 2*span*rng.Float64())
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Retryable decides whether an error is worth another attempt. A nil
// function retries everything except context cancellation.
type Retryable func(error) bool

// defaultRetryable retries any error except a dead context.
func defaultRetryable(err error) bool {
	return err != context.Canceled && err != context.DeadlineExceeded
}

// Doer runs functions under one policy with a shared deterministic jitter
// stream. It is safe for concurrent use.
type Doer struct {
	policy Policy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewDoer creates a Doer for the policy (zero fields get defaults).
func NewDoer(p Policy) *Doer {
	p = p.withDefaults()
	return &Doer{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Policy returns the normalized policy in force.
func (d *Doer) Policy() Policy { return d.policy }

// jittered draws the next delay for retry n from the shared stream.
func (d *Doer) jittered(n int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.policy.delay(n, d.rng)
}

// Do runs fn (attempt is 0-based) until it succeeds, the budget is spent,
// the error is not retryable, or the context dies. Backoff sleeps are
// deadline-aware: if the remaining context time cannot cover the next
// delay, Do gives up immediately with the last error rather than sleeping
// into a guaranteed timeout.
func (d *Doer) Do(ctx context.Context, retryable Retryable, fn func(attempt int) error) error {
	if retryable == nil {
		retryable = defaultRetryable
	}
	var lastErr error
	for attempt := 0; attempt < d.policy.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		lastErr = fn(attempt)
		if lastErr == nil {
			return nil
		}
		if !retryable(lastErr) || attempt == d.policy.MaxAttempts-1 {
			return lastErr
		}
		delay := d.jittered(attempt + 1)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return lastErr
		}
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return lastErr
			case <-timer.C:
			}
		}
	}
	return lastErr
}
