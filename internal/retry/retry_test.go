package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	d := NewDoer(Policy{MaxAttempts: 4, BaseDelay: time.Microsecond})
	calls := 0
	err := d.Do(context.Background(), nil, func(attempt int) error {
		if attempt != calls {
			t.Errorf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls: %d", calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	d := NewDoer(Policy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	calls := 0
	wantErr := errors.New("down")
	err := d.Do(context.Background(), nil, func(int) error { calls++; return wantErr })
	if err != wantErr {
		t.Errorf("err: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls: %d, want 3", calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	d := NewDoer(Policy{MaxAttempts: 5, BaseDelay: time.Microsecond})
	perm := errors.New("permanent")
	calls := 0
	err := d.Do(context.Background(), func(err error) bool { return err != perm }, func(int) error {
		calls++
		return perm
	})
	if err != perm || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestDoRespectsCancelledContext(t *testing.T) {
	d := NewDoer(Policy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := d.Do(ctx, nil, func(int) error { calls++; return errors.New("x") })
	if err == nil {
		t.Error("cancelled Do succeeded")
	}
	if calls != 0 {
		t.Errorf("calls on dead context: %d", calls)
	}
}

func TestDoDeadlineAware(t *testing.T) {
	// A deadline too close to cover the backoff must abort instead of
	// sleeping through it.
	d := NewDoer(Policy{MaxAttempts: 5, BaseDelay: time.Hour, JitterFrac: 0})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := d.Do(ctx, nil, func(int) error { calls++; return errors.New("slow server") })
	if err == nil {
		t.Error("expected error")
	}
	if calls != 1 {
		t.Errorf("calls: %d, want 1 (no sleep past the deadline)", calls)
	}
	if time.Since(start) > time.Second {
		t.Error("Do slept past the context deadline")
	}
}

func TestDelayBackoffAndCap(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, JitterFrac: 0}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.delay(i+1, rng); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestJitterDeterministic(t *testing.T) {
	seq := func() []time.Duration {
		d := NewDoer(Policy{Seed: 42})
		out := make([]time.Duration, 5)
		for i := range out {
			out[i] = d.jittered(i + 1)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	d := NewDoer(Policy{})
	p := d.Policy()
	if p.MaxAttempts != 3 || p.BaseDelay != 10*time.Millisecond || p.MaxDelay != 500*time.Millisecond || p.Seed != 1 {
		t.Errorf("defaults: %+v", p)
	}
}
