package dsweep

import (
	"errors"
	"time"
)

// ErrChaosKilled is returned by Worker.Run when a chaos script kills the
// worker. The harness treats it as the in-process equivalent of SIGKILL:
// the worker goroutine exits on the spot — no completion report, no
// heartbeat, no cleanup — and recovery is entirely the coordinator's
// lease-expiry path, exactly as with a real killed process.
var ErrChaosKilled = errors.New("dsweep: worker killed by chaos script")

// Action is one chaos injection kind.
type Action int

const (
	// ActNone runs the unit normally.
	ActNone Action = iota
	// ActKillBeforeWrite kills the worker after the scan, before anything
	// durable is written — the strongest mid-shard SIGKILL: the unit leaves
	// zero bytes behind and must be wholly re-leased.
	ActKillBeforeWrite
	// ActKillAfterWrite kills the worker after the shard archive is durably
	// flushed but before the completion report — the shard bytes exist but
	// the coordinator never hears about them, so the unit is re-leased and
	// the orphan file is simply never referenced by the merge.
	ActKillAfterWrite
	// ActStall suppresses the unit's heartbeats and sleeps Delay before the
	// write, making the worker a straggler: its lease expires, the unit is
	// re-leased, and its late completion arrives as a duplicate.
	ActStall
	// ActSlowDisk sleeps Delay before the shard write while heartbeats
	// continue — a slow disk that should NOT lose the lease.
	ActSlowDisk
	// ActKillBetweenChunks kills the worker on a chunked (streaming) unit
	// after AfterChunks chunks have been durably flushed — the mid-shard
	// SIGKILL the chunk files exist to survive: the re-leased unit reuses
	// every flushed chunk by checksum and scans only the rest. On a
	// non-chunked unit it behaves like ActKillBeforeWrite.
	ActKillBetweenChunks
)

// Event schedules one injection against one claim.
type Event struct {
	// Claim is the 1-based ordinal of the worker's lease claim the event
	// fires on (the Nth unit this worker starts, whatever unit that is —
	// chaos scripts are written against worker behaviour, not plan layout).
	Claim int
	// Act is the injection.
	Act Action
	// Delay parameterizes ActStall and ActSlowDisk.
	Delay time.Duration
	// AfterChunks parameterizes ActKillBetweenChunks: the kill fires once
	// this many chunks of the claimed unit have been durably flushed.
	AfterChunks int
}

// Script is a deterministic chaos schedule for one worker. A nil *Script
// injects nothing, so production code paths carry no chaos branches.
type Script struct {
	byClaim map[int]Event
}

// NewScript builds a schedule from events; later events on the same claim
// ordinal replace earlier ones.
func NewScript(events ...Event) *Script {
	s := &Script{byClaim: make(map[int]Event, len(events))}
	for _, ev := range events {
		s.byClaim[ev.Claim] = ev
	}
	return s
}

// next returns the event scheduled for a claim ordinal (ActNone if none).
// Nil-safe: a nil script always answers ActNone.
func (s *Script) next(claim int) Event {
	if s == nil {
		return Event{Claim: claim, Act: ActNone}
	}
	ev, ok := s.byClaim[claim]
	if !ok {
		return Event{Claim: claim, Act: ActNone}
	}
	return ev
}
