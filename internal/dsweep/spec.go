package dsweep

import (
	"context"
	"fmt"
	"strings"

	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

// WorldSpec carries everything a worker needs to rebuild the sweep
// environment for itself: the world, the sample, and the scan
// configuration. It travels inside the Plan, so a remote worker process
// needs only the coordinator's address — determinism of the world builder
// and the scan engine guarantees every worker sees the same targets and
// produces the same bytes for the same shard.
//
// Per-worker vantage-point fault profiles are deliberately NOT part of the
// spec (or the fingerprint): they model where a worker measures from, not
// what the sweep measures, and two vantage points may legitimately disagree
// — which is exactly the divergent-duplicate case the coordinator settles
// by checksum.
type WorldSpec struct {
	// ScaleDiv is the population divisor (the -scale flag; 2000 → .com has
	// ~59k domains).
	ScaleDiv float64 `json:"scale_div"`
	// Seed fixes the world build and the sample draw.
	Seed int64 `json:"seed"`
	// Sample is the number of domains drawn from the world.
	Sample int `json:"sample"`
	// Workers is each worker's internal scan concurrency.
	Workers int `json:"workers"`
	// Retries is the per-query attempt budget.
	Retries int `json:"retries"`
	// Resweeps is the bounded re-sweep pass count (-1 disables).
	Resweeps int `json:"resweeps"`
	// Cache and Dedup toggle the optional exchange stack layers.
	Cache bool `json:"cache,omitempty"`
	Dedup bool `json:"dedup,omitempty"`
	// Chunk, when positive, runs workers on the streaming scan path in
	// chunks of this many targets (see Plan.Chunk); zero keeps the legacy
	// whole-shard path.
	Chunk int `json:"chunk,omitempty"`
	// FaultFrac/FaultLoss/FaultSeed configure the sweep-wide fault
	// injection (a fraction of DNS operators made lossy), identically on
	// every worker.
	FaultFrac float64 `json:"fault_frac,omitempty"`
	FaultLoss float64 `json:"fault_loss,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
}

// normalize fills defaults matching the regsec-scan CLI.
func (sp *WorldSpec) normalize() {
	if sp.ScaleDiv <= 0 {
		sp.ScaleDiv = 2000
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Sample <= 0 {
		sp.Sample = 1000
	}
	if sp.Workers <= 0 {
		sp.Workers = 16
	}
	if sp.Retries <= 0 {
		sp.Retries = 3
	}
	if sp.Resweeps == 0 {
		sp.Resweeps = 2
	}
	if sp.FaultSeed == 0 {
		sp.FaultSeed = 1
	}
}

// Fingerprint renders the sweep configuration fingerprint that binds the
// coordinator's state and every worker completion to one plan. Everything
// that shapes the output bytes is in it; per-worker vantage profiles are
// not (see the type comment).
func (sp *WorldSpec) Fingerprint(days []simtime.Day, shards int) string {
	s := *sp
	s.normalize()
	names := make([]string, 0, len(days))
	for _, d := range days {
		names = append(names, d.String())
	}
	fp := fmt.Sprintf("dsweep scale=%g seed=%d days=%s sample=%d shards=%d faults=%g/%g/%d retries=%d resweeps=%d cache=%v dedup=%v",
		s.ScaleDiv, s.Seed, strings.Join(names, ","), s.Sample, shards,
		s.FaultFrac, s.FaultLoss, s.FaultSeed, s.Retries, s.Resweeps, s.Cache, s.Dedup)
	// Chunk size shapes the durable chunk files a resumed worker trusts, so
	// chunked plans get their own fingerprint space; legacy (chunk-less)
	// fingerprints are unchanged.
	if s.Chunk > 0 {
		fp += fmt.Sprintf(" chunk=%d", s.Chunk)
	}
	return fp
}

// PlanFor assembles a complete Plan for this spec.
func (sp *WorldSpec) PlanFor(days []simtime.Day, shards int) Plan {
	s := *sp
	s.normalize()
	return Plan{
		Fingerprint: s.Fingerprint(days, shards),
		Days:        append([]simtime.Day(nil), days...),
		Shards:      shards,
		Chunk:       s.Chunk,
		Spec:        &s,
	}
}

// Build materializes the spec into a scan.DaySetup: the world is built
// once (the expensive part), and each day's call materializes the sample
// as real signed DNS with a fresh exchange stack. vantage, when non-empty,
// is this worker's own vantage-point fault profile, layered below the
// sweep-wide fault rules and driven by vantageSeed.
func (sp *WorldSpec) Build(vantage []faultnet.Rule, vantageSeed int64, onEvent func(format string, args ...any)) (scan.DaySetup, error) {
	world, err := tldsim.Build(tldsim.WorldConfig{Scale: 1 / sp.ScaleDiv, Seed: sp.Seed})
	if err != nil {
		return nil, err
	}
	return sp.BuildWith(world, vantage, vantageSeed, onEvent)
}

// BuildWith is Build over a caller-supplied world — typically one
// mmap-loaded from a world cache, so the population is file-backed
// instead of resident heap.
func (sp *WorldSpec) BuildWith(world *tldsim.World, vantage []faultnet.Rule, vantageSeed int64, onEvent func(format string, args ...any)) (scan.DaySetup, error) {
	s := *sp
	s.normalize()
	domains := world.Sample(s.Sample, s.Seed)
	targets := make([]scan.Target, 0, len(domains))
	for _, d := range domains {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, []scan.Target, error) {
		if onEvent != nil {
			onEvent("materializing %d domains at %s", len(domains), day)
		}
		mat, err := tldsim.Materialize(day, domains)
		if err != nil {
			return nil, nil, err
		}
		clock := func() simtime.Day { return day }
		var mw []exchange.Middleware
		if s.FaultFrac > 0 {
			rules, _ := tldsim.LossyOperators(domains, s.FaultFrac, s.FaultLoss, s.FaultSeed)
			mw = append(mw, faultnet.New(nil, s.FaultSeed, clock, rules...).Middleware())
		}
		if len(vantage) > 0 {
			mw = append(mw, faultnet.New(nil, vantageSeed, clock, vantage...).Middleware())
		}
		var cacheOpts *exchange.CacheOptions
		if s.Cache {
			cacheOpts = &exchange.CacheOptions{}
		}
		scanner, err := scan.New(scan.Config{
			Exchange:    mat.Net,
			Middleware:  mw,
			Dedup:       s.Dedup,
			Cache:       cacheOpts,
			TLDServers:  mat.TLDServers,
			Workers:     s.Workers,
			Clock:       clock,
			Retry:       retry.Policy{MaxAttempts: s.Retries},
			MaxResweeps: s.Resweeps,
		})
		if err != nil {
			return nil, nil, err
		}
		return scanner, targets, nil
	}, nil
}

// BuildStream is Build's streaming counterpart: the same world and sample,
// but the day setup yields a target cursor plus a per-chunk prepare hook
// that materializes only the chunk in flight — signing cost and resident
// zone data scale with the chunk size, not the sample. Fault middleware is
// derived from the cursor without materializing the sample, and is
// byte-for-byte the profile Build produces for the same spec.
func (sp *WorldSpec) BuildStream(vantage []faultnet.Rule, vantageSeed int64, onEvent func(format string, args ...any)) (scan.StreamDaySetup, error) {
	world, err := tldsim.Build(tldsim.WorldConfig{Scale: 1 / sp.ScaleDiv, Seed: sp.Seed})
	if err != nil {
		return nil, err
	}
	return sp.BuildStreamWith(world, vantage, vantageSeed, onEvent)
}

// BuildStreamWith is BuildStream over a caller-supplied world. The
// streaming setup keeps the world reachable for the whole sweep (chunks
// materialize from it lazily), so an mmap-loaded world matters more here
// than for Build: it keeps the retained population file-backed.
func (sp *WorldSpec) BuildStreamWith(world *tldsim.World, vantage []faultnet.Rule, vantageSeed int64, onEvent func(format string, args ...any)) (scan.StreamDaySetup, error) {
	s := *sp
	s.normalize()
	src := world.SampleSource(s.Sample, s.Seed)
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, scan.TargetSource, scan.ChunkPrepare, error) {
		if onEvent != nil {
			onEvent("streaming %d domains at %s", src.Len(), day)
		}
		sm := tldsim.NewStreamMaterializer(day, src)
		clock := func() simtime.Day { return day }
		var mw []exchange.Middleware
		if s.FaultFrac > 0 {
			rules, _ := tldsim.LossyOperatorsSource(src, s.FaultFrac, s.FaultLoss, s.FaultSeed)
			mw = append(mw, faultnet.New(nil, s.FaultSeed, clock, rules...).Middleware())
		}
		if len(vantage) > 0 {
			mw = append(mw, faultnet.New(nil, vantageSeed, clock, vantage...).Middleware())
		}
		var cacheOpts *exchange.CacheOptions
		if s.Cache {
			cacheOpts = &exchange.CacheOptions{}
		}
		scanner, err := scan.New(scan.Config{
			Exchange:    sm,
			Middleware:  mw,
			Dedup:       s.Dedup,
			Cache:       cacheOpts,
			TLDServers:  sm.TLDServers,
			Workers:     s.Workers,
			Clock:       clock,
			Retry:       retry.Policy{MaxAttempts: s.Retries},
			MaxResweeps: s.Resweeps,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		prepare := func(ctx context.Context, lo, hi int) error {
			// Each chunk's materialization signs with fresh keys, so any
			// answers cached from the previous chunk would fail this chunk's
			// validation — the cache must not outlive a chunk.
			if s.Cache {
				scanner.Stack().FlushCache()
			}
			return sm.Prepare(ctx, lo, hi)
		}
		return scanner, src, prepare, nil
	}, nil
}
