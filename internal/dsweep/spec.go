package dsweep

import (
	"context"
	"fmt"
	"strings"

	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

// WorldSpec carries everything a worker needs to rebuild the sweep
// environment for itself: the world, the sample, and the scan
// configuration. It travels inside the Plan, so a remote worker process
// needs only the coordinator's address — determinism of the world builder
// and the scan engine guarantees every worker sees the same targets and
// produces the same bytes for the same shard.
//
// Per-worker vantage-point fault profiles are deliberately NOT part of the
// spec (or the fingerprint): they model where a worker measures from, not
// what the sweep measures, and two vantage points may legitimately disagree
// — which is exactly the divergent-duplicate case the coordinator settles
// by checksum.
type WorldSpec struct {
	// ScaleDiv is the population divisor (the -scale flag; 2000 → .com has
	// ~59k domains).
	ScaleDiv float64 `json:"scale_div"`
	// Seed fixes the world build and the sample draw.
	Seed int64 `json:"seed"`
	// Sample is the number of domains drawn from the world.
	Sample int `json:"sample"`
	// Workers is each worker's internal scan concurrency.
	Workers int `json:"workers"`
	// Retries is the per-query attempt budget.
	Retries int `json:"retries"`
	// Resweeps is the bounded re-sweep pass count (-1 disables).
	Resweeps int `json:"resweeps"`
	// Cache and Dedup toggle the optional exchange stack layers.
	Cache bool `json:"cache,omitempty"`
	Dedup bool `json:"dedup,omitempty"`
	// FaultFrac/FaultLoss/FaultSeed configure the sweep-wide fault
	// injection (a fraction of DNS operators made lossy), identically on
	// every worker.
	FaultFrac float64 `json:"fault_frac,omitempty"`
	FaultLoss float64 `json:"fault_loss,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
}

// normalize fills defaults matching the regsec-scan CLI.
func (sp *WorldSpec) normalize() {
	if sp.ScaleDiv <= 0 {
		sp.ScaleDiv = 2000
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Sample <= 0 {
		sp.Sample = 1000
	}
	if sp.Workers <= 0 {
		sp.Workers = 16
	}
	if sp.Retries <= 0 {
		sp.Retries = 3
	}
	if sp.Resweeps == 0 {
		sp.Resweeps = 2
	}
	if sp.FaultSeed == 0 {
		sp.FaultSeed = 1
	}
}

// Fingerprint renders the sweep configuration fingerprint that binds the
// coordinator's state and every worker completion to one plan. Everything
// that shapes the output bytes is in it; per-worker vantage profiles are
// not (see the type comment).
func (sp *WorldSpec) Fingerprint(days []simtime.Day, shards int) string {
	s := *sp
	s.normalize()
	names := make([]string, 0, len(days))
	for _, d := range days {
		names = append(names, d.String())
	}
	return fmt.Sprintf("dsweep scale=%g seed=%d days=%s sample=%d shards=%d faults=%g/%g/%d retries=%d resweeps=%d cache=%v dedup=%v",
		s.ScaleDiv, s.Seed, strings.Join(names, ","), s.Sample, shards,
		s.FaultFrac, s.FaultLoss, s.FaultSeed, s.Retries, s.Resweeps, s.Cache, s.Dedup)
}

// PlanFor assembles a complete Plan for this spec.
func (sp *WorldSpec) PlanFor(days []simtime.Day, shards int) Plan {
	s := *sp
	s.normalize()
	return Plan{
		Fingerprint: s.Fingerprint(days, shards),
		Days:        append([]simtime.Day(nil), days...),
		Shards:      shards,
		Spec:        &s,
	}
}

// Build materializes the spec into a scan.DaySetup: the world is built
// once (the expensive part), and each day's call materializes the sample
// as real signed DNS with a fresh exchange stack. vantage, when non-empty,
// is this worker's own vantage-point fault profile, layered below the
// sweep-wide fault rules and driven by vantageSeed.
func (sp *WorldSpec) Build(vantage []faultnet.Rule, vantageSeed int64, onEvent func(format string, args ...any)) (scan.DaySetup, error) {
	s := *sp
	s.normalize()
	world, err := tldsim.Build(tldsim.WorldConfig{Scale: 1 / s.ScaleDiv, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	domains := world.Sample(s.Sample, s.Seed)
	targets := make([]scan.Target, 0, len(domains))
	for _, d := range domains {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, []scan.Target, error) {
		if onEvent != nil {
			onEvent("materializing %d domains at %s", len(domains), day)
		}
		mat, err := tldsim.Materialize(day, domains)
		if err != nil {
			return nil, nil, err
		}
		clock := func() simtime.Day { return day }
		var mw []exchange.Middleware
		if s.FaultFrac > 0 {
			rules, _ := tldsim.LossyOperators(domains, s.FaultFrac, s.FaultLoss, s.FaultSeed)
			mw = append(mw, faultnet.New(nil, s.FaultSeed, clock, rules...).Middleware())
		}
		if len(vantage) > 0 {
			mw = append(mw, faultnet.New(nil, vantageSeed, clock, vantage...).Middleware())
		}
		var cacheOpts *exchange.CacheOptions
		if s.Cache {
			cacheOpts = &exchange.CacheOptions{}
		}
		scanner, err := scan.New(scan.Config{
			Exchange:    mat.Net,
			Middleware:  mw,
			Dedup:       s.Dedup,
			Cache:       cacheOpts,
			TLDServers:  mat.TLDServers,
			Workers:     s.Workers,
			Clock:       clock,
			Retry:       retry.Policy{MaxAttempts: s.Retries},
			MaxResweeps: s.Resweeps,
		})
		if err != nil {
			return nil, nil, err
		}
		return scanner, targets, nil
	}, nil
}
