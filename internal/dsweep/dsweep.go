// Package dsweep lifts scan.ResumableSweep into a crash-tolerant
// multi-process topology: a coordinator that owns the sweep plan and
// leases (day, shard) work units with deadlines, and workers that claim
// leases, scan their shard through their own exchange stack, flush a
// checksum-trailered shard archive via internal/checkpoint, and report
// completion. The paper's longitudinal evidence is an OpenINTEL-style
// archive measured daily from multiple vantage points for 21 months — a
// sweep that long only finishes if the pipeline shrugs off worker crashes,
// stragglers, and coordinator restarts.
//
// Robustness contract:
//
//   - A worker killed mid-shard leaves nothing durable behind; its lease
//     expires and the unit is re-leased to any live worker.
//   - A straggler that finishes after its unit was re-leased produces a
//     duplicate completion. Duplicates are resolved deterministically by
//     checksum — same bytes are acknowledged idempotently, divergent bytes
//     (distinct vantage-point fault profiles) are settled by a fixed
//     value ordering, never by arrival order.
//   - The coordinator persists lease and completion state atomically after
//     every mutation, so a coordinator restart resumes the sweep instead
//     of restarting it.
//   - The final merge re-verifies every shard's CRC and concatenates
//     shards in plan order, producing an archive byte-identical to an
//     uninterrupted single-process ResumableSweep of the same plan.
//
// Workers share the coordinator's checkpoint directory (same filesystem —
// locally, or via shared storage), the same role OpenINTEL's central
// collection store plays for its distributed vantage points. The control
// plane is tiny (lease/heartbeat/complete) and travels either by direct
// method call (in-process workers, the chaos harness) or HTTP+JSON
// (cmd/regsec-sweepd plus regsec-scan -worker).
package dsweep

import (
	"context"
	"fmt"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// UnitID names one (day, shard) work unit of a sweep plan.
type UnitID struct {
	Day   simtime.Day `json:"day"`
	Shard int         `json:"shard"`
}

// String renders "YYYY-MM-DD/shard".
func (u UnitID) String() string { return fmt.Sprintf("%s/%d", u.Day, u.Shard) }

// Plan is a sweep's immutable work definition. The fingerprint binds
// persisted coordinator state and worker completions to one configuration,
// exactly as checkpoint.State's fingerprint does for single-process runs.
type Plan struct {
	Fingerprint string        `json:"fingerprint"`
	Days        []simtime.Day `json:"days"`
	// Shards is the number of work units per day; every participant splits
	// a day's targets with scan.ShardSplit(targets, Shards).
	Shards int `json:"shards"`
	// Chunk, when positive, switches workers to the streaming scan path:
	// each shard is scanned in chunks of this many targets, with every
	// completed chunk durably flushed, so a killed worker resumes its
	// shard at the last flushed chunk instead of from scratch. Zero keeps
	// the legacy whole-shard path. The value shapes the durable chunk
	// files, so it is part of the plan (and its fingerprint) like Shards.
	Chunk int `json:"chunk,omitempty"`
	// Spec, when set, carries the world configuration remote workers need
	// to rebuild the sweep environment for themselves.
	Spec *WorldSpec `json:"spec,omitempty"`
}

// Units is the plan's total work unit count.
func (p *Plan) Units() int { return len(p.Days) * p.Shards }

// validate rejects unusable plans before any state is touched.
func (p *Plan) validate() error {
	switch {
	case p.Fingerprint == "":
		return fmt.Errorf("dsweep: plan requires a fingerprint")
	case len(p.Days) == 0:
		return fmt.Errorf("dsweep: plan has no days")
	case p.Shards < 1:
		return fmt.Errorf("dsweep: plan needs at least 1 shard per day, have %d", p.Shards)
	case p.Chunk < 0:
		return fmt.Errorf("dsweep: plan chunk size must be non-negative, have %d", p.Chunk)
	}
	seen := make(map[simtime.Day]bool, len(p.Days))
	for _, d := range p.Days {
		if seen[d] {
			return fmt.Errorf("dsweep: plan lists day %s twice", d)
		}
		seen[d] = true
	}
	return nil
}

// GrantStatus is the coordinator's answer class to a lease request.
type GrantStatus string

const (
	// GrantRun carries a lease: scan the unit and complete it.
	GrantRun GrantStatus = "run"
	// GrantWait means every pending unit is currently leased; poll again.
	GrantWait GrantStatus = "wait"
	// GrantDone means every unit is complete; the worker can exit.
	GrantDone GrantStatus = "done"
)

// Grant is the coordinator's reply to a lease request.
type Grant struct {
	Status  GrantStatus `json:"status"`
	LeaseID string      `json:"lease_id,omitempty"`
	Unit    UnitID      `json:"unit"`
	// TTLMillis is the lease budget: the worker must complete or heartbeat
	// within it, or the unit is re-leased to someone else.
	TTLMillis int64 `json:"ttl_millis,omitempty"`
	// RetryMillis suggests a poll delay when Status is "wait".
	RetryMillis int64 `json:"retry_millis,omitempty"`
}

// CompleteRequest reports one finished unit: the checksum metadata of the
// shard archive the worker flushed into the shared checkpoint directory,
// plus the shard's health accounting for per-worker attribution.
type CompleteRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Unit    UnitID `json:"unit"`
	// Fingerprint guards against a worker reporting into the wrong sweep.
	Fingerprint string            `json:"fingerprint"`
	Meta        *checkpoint.Shard `json:"meta"`
	Health      *scan.SweepHealth `json:"health,omitempty"`
}

// CompleteStatus classifies how a completion was settled.
type CompleteStatus string

const (
	// CompleteAccepted: first completion of the unit; it is now done.
	CompleteAccepted CompleteStatus = "accepted"
	// CompleteDuplicate: the unit was already done with identical bytes
	// (a straggler finishing after a re-lease); acknowledged idempotently.
	CompleteDuplicate CompleteStatus = "duplicate"
	// CompleteDivergent: the unit was already done with different bytes;
	// the winner was chosen by the deterministic checksum ordering.
	CompleteDivergent CompleteStatus = "divergent"
	// CompleteRejected: the shard archive failed verification on the
	// coordinator's side; the unit returns to the pool.
	CompleteRejected CompleteStatus = "rejected"
)

// CompleteReply is the coordinator's answer to a completion report.
type CompleteReply struct {
	Status CompleteStatus `json:"status"`
	// Done reports that this completion finished the whole plan, so the
	// worker can exit without another lease round-trip — which matters
	// because the coordinator may stop serving the moment the plan is done.
	Done bool `json:"done,omitempty"`
}

// Coordination is the worker's view of a coordinator. The *Coordinator
// type implements it directly (in-process topologies, the chaos harness);
// *Client implements it over HTTP for separate worker processes.
type Coordination interface {
	// FetchPlan returns the sweep plan.
	FetchPlan(ctx context.Context) (*Plan, error)
	// Lease asks for the next work unit.
	Lease(ctx context.Context, worker string) (*Grant, error)
	// Heartbeat extends a held lease's deadline.
	Heartbeat(ctx context.Context, leaseID string) error
	// Complete reports a finished unit.
	Complete(ctx context.Context, req *CompleteRequest) (*CompleteReply, error)
}
