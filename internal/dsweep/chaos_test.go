package dsweep

// The chaos harness: a real coordinator + in-process workers sweeping a
// real in-memory signed-DNS world, with scripted kills, stalls, and slow
// disks. Every test's acceptance bar is the same: whatever chaos is
// injected, the merged archive must be byte-identical to an uninterrupted
// single-process ResumableSweep of the same plan.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// buildTestWorld wires an ecosystem with registrars producing every
// deployment class (mirrors the scan package's test world).
func buildTestWorld(t *testing.T) (*dnstest.Ecosystem, []scan.Target) {
	t.Helper()
	eco, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{TLDs: []string{"com", "nl"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p registrar.Policy) *registrar.Registrar {
		if p.Roles == nil {
			p.Roles = map[string]registrar.Role{
				"com": {Kind: registrar.RoleRegistrar},
				"nl":  {Kind: registrar.RoleRegistrar},
			}
		}
		r, err := registrar.New(p, registrar.Deps{
			Registries: eco.Registries, Net: eco.Net, Clock: eco.Clock.Day,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.CreateAccount("c@x.net")
		return r
	}
	good := mk(registrar.Policy{
		ID: "good", Name: "Good", NSHosts: []string{"ns1.good.net"},
		HostedDNSSEC: registrar.SupportDefault,
	})
	partial := mk(registrar.Policy{
		ID: "partial", Name: "Partial", NSHosts: []string{"ns1.partial.net"},
		HostedDNSSEC:  registrar.SupportDefault,
		PublishDSTLDs: map[string]bool{"nl": true},
	})
	plain := mk(registrar.Policy{
		ID: "plain", Name: "Plain", NSHosts: []string{"ns1.plain.net"},
	})
	var domains []string
	for _, d := range []struct {
		r      *registrar.Registrar
		domain string
	}{
		{good, "full1.com"}, {good, "full2.com"}, {good, "dutch.nl"},
		{partial, "half1.com"}, {partial, "half2.com"},
		{plain, "none1.com"}, {plain, "none2.com"}, {plain, "none3.com"},
		{plain, "victim.com"},
	} {
		if err := d.r.Purchase("c@x.net", d.domain, ""); err != nil {
			t.Fatalf("purchase %s: %v", d.domain, err)
		}
		domains = append(domains, d.domain)
	}
	garbage := &dnswire.DS{KeyTag: 7, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if err := eco.Registries["com"].SetDS("plain", "victim.com", []*dnswire.DS{garbage}); err != nil {
		t.Fatal(err)
	}
	domains = append(domains, "ghost.com")
	return eco, scan.TargetsFromDomains(domains)
}

// testSetup builds a DaySetup over the fixed in-memory world.
func testSetup(t *testing.T, eco *dnstest.Ecosystem, targets []scan.Target) scan.DaySetup {
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, []scan.Target, error) {
		s, err := scan.New(scan.Config{
			Exchange: eco.Net,
			TLDServers: map[string]string{
				"com": dnstest.TLDServerAddr("com"),
				"nl":  dnstest.TLDServerAddr("nl"),
			},
			Workers: 3,
			Clock:   eco.Clock.Day,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, targets, nil
	}
}

// referenceArchive runs an uninterrupted single-process ResumableSweep of
// the plan and returns its archive bytes — the byte-identity oracle.
func referenceArchive(t *testing.T, eco *dnstest.Ecosystem, targets []scan.Target, days []simtime.Day, shards int) []byte {
	t.Helper()
	rs := &scan.ResumableSweep{Shards: shards, Setup: testSetup(t, eco, targets)}
	store, err := rs.Run(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chaosEnv is one prepared distributed-sweep scenario.
type chaosEnv struct {
	eco     *dnstest.Ecosystem
	targets []scan.Target
	days    []simtime.Day
	plan    Plan
	store   *checkpoint.Store
	want    []byte
}

// newChaosEnv builds the world, the oracle archive, and the plan.
func newChaosEnv(t *testing.T, shards int) *chaosEnv {
	t.Helper()
	eco, targets := buildTestWorld(t)
	days := []simtime.Day{eco.Clock.Day(), eco.Clock.Day() + 1}
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return &chaosEnv{
		eco: eco, targets: targets, days: days,
		plan:  Plan{Fingerprint: "chaos-drill-v1", Days: days, Shards: shards},
		store: st,
		want:  referenceArchive(t, eco, targets, days, shards),
	}
}

// run executes RunLocal with the given worker scripts and asserts the
// merged archive is byte-identical to the oracle.
func (env *chaosEnv) run(t *testing.T, ttl time.Duration, scripts map[string]*Script) *Result {
	t.Helper()
	var workers []WorkerSpec
	for _, name := range sortedKeys(scripts) {
		workers = append(workers, WorkerSpec{
			Name:  name,
			Setup: testSetup(t, env.eco, env.targets),
			Chaos: scripts[name],
		})
	}
	store, res, err := RunLocal(context.Background(), LocalConfig{
		Plan: env.plan, Store: env.store, LeaseTTL: ttl, Workers: workers,
		OnEvent: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := store.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.want, got.Bytes()) {
		t.Errorf("distributed archive differs from uninterrupted single-process sweep:\n--- want\n%s\n--- got\n%s",
			env.want, got.String())
	}
	return res
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys(m map[string]*Script) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

func TestRunLocalCleanByteIdentical(t *testing.T) {
	env := newChaosEnv(t, 3)
	res := env.run(t, 10*time.Second, map[string]*Script{"w1": nil, "w2": nil})
	if len(res.WorkerErrs) != 0 {
		t.Fatalf("worker errors in clean run: %v", res.WorkerErrs)
	}
	s := res.Stats
	if s.Done != env.plan.Units() || s.Releases != 0 || s.Duplicates != 0 {
		t.Fatalf("clean-run stats: %+v", s)
	}
	// Per-worker attribution covers the whole sweep.
	total := 0
	for _, h := range res.HealthByWorker {
		total += h.Targets
	}
	if want := len(env.targets) * len(env.days); total != want {
		t.Fatalf("per-worker targets %d, want %d", total, want)
	}
}

func TestRunLocalWorkerKilledMidShard(t *testing.T) {
	env := newChaosEnv(t, 3)
	// w1 is SIGKILLed mid-shard on its first claim: the scan ran but
	// nothing durable was written. Recovery is pure lease expiry.
	res := env.run(t, 300*time.Millisecond, map[string]*Script{
		"w1": NewScript(Event{Claim: 1, Act: ActKillBeforeWrite}),
		"w2": nil,
	})
	if !errors.Is(res.WorkerErrs["w1"], ErrChaosKilled) {
		t.Fatalf("w1 error: %v", res.WorkerErrs["w1"])
	}
	if res.Stats.Releases == 0 {
		t.Fatalf("killed worker's lease never expired: %+v", res.Stats)
	}
}

func TestRunLocalWorkerKilledAfterWrite(t *testing.T) {
	env := newChaosEnv(t, 3)
	// w1 dies after flushing its shard but before reporting: the orphan
	// owner-tagged file must simply never be referenced by the merge.
	res := env.run(t, 300*time.Millisecond, map[string]*Script{
		"w1": NewScript(Event{Claim: 1, Act: ActKillAfterWrite}),
		"w2": nil,
	})
	if !errors.Is(res.WorkerErrs["w1"], ErrChaosKilled) {
		t.Fatalf("w1 error: %v", res.WorkerErrs["w1"])
	}
	if res.Stats.Releases == 0 {
		t.Fatalf("dead worker's lease never expired: %+v", res.Stats)
	}
}

func TestRunLocalStragglerDuplicate(t *testing.T) {
	env := newChaosEnv(t, 3)
	// w1 stalls (no heartbeats) for far longer than the TTL on its first
	// claim, loses the unit to w2, then finishes anyway: a duplicate
	// completion the coordinator must settle by checksum, idempotently.
	res := env.run(t, 200*time.Millisecond, map[string]*Script{
		"w1": NewScript(Event{Claim: 1, Act: ActStall, Delay: 800 * time.Millisecond}),
		"w2": nil,
	})
	if len(res.WorkerErrs) != 0 {
		t.Fatalf("worker errors: %v", res.WorkerErrs)
	}
	if res.Stats.Releases == 0 || res.Stats.Duplicates == 0 {
		t.Fatalf("straggler not re-leased+deduplicated: %+v", res.Stats)
	}
	if res.Stats.Divergent != 0 {
		t.Fatalf("identical straggler bytes counted divergent: %+v", res.Stats)
	}
}

func TestRunLocalSlowDiskKeepsLease(t *testing.T) {
	env := newChaosEnv(t, 3)
	// w1's disk is slow — well past the TTL — but its heartbeats keep
	// arriving, so the lease must never be stolen.
	res := env.run(t, 200*time.Millisecond, map[string]*Script{
		"w1": NewScript(Event{Claim: 1, Act: ActSlowDisk, Delay: 700 * time.Millisecond}),
		"w2": nil,
	})
	if len(res.WorkerErrs) != 0 {
		t.Fatalf("worker errors: %v", res.WorkerErrs)
	}
	if res.Stats.Releases != 0 || res.Stats.Duplicates != 0 {
		t.Fatalf("heartbeating slow worker lost its lease: %+v", res.Stats)
	}
}

func TestRunLocalCoordinatorRestartResumes(t *testing.T) {
	env := newChaosEnv(t, 3)
	// Phase 1: every worker dies after its second claim's write, so the
	// sweep halts partway with durable-but-unreported shards and an
	// unfinished plan. RunLocal must fail, leaving recoverable state.
	_, res, err := RunLocal(context.Background(), LocalConfig{
		Plan: env.plan, Store: env.store, LeaseTTL: 200 * time.Millisecond,
		Workers: []WorkerSpec{
			{Name: "w1", Setup: testSetup(t, env.eco, env.targets), Chaos: NewScript(Event{Claim: 2, Act: ActKillBeforeWrite})},
			{Name: "w2", Setup: testSetup(t, env.eco, env.targets), Chaos: NewScript(Event{Claim: 2, Act: ActKillAfterWrite})},
		},
		OnEvent: t.Logf,
	})
	if err == nil {
		t.Fatal("phase 1 succeeded despite every worker dying")
	}
	if res == nil || res.Stats.Done == 0 || res.Stats.Done == env.plan.Units() {
		t.Fatalf("phase 1 should end partway: %+v", res)
	}

	// Phase 2: a fresh coordinator process over the same directory adopts
	// the completed units and finishes with fresh workers.
	res2 := env.run(t, 200*time.Millisecond, map[string]*Script{"w3": nil})
	if res2.Stats.Recovered == 0 {
		t.Fatalf("restart adopted nothing: %+v", res2.Stats)
	}
	if res2.Stats.Recovered != res.Stats.Done {
		t.Fatalf("recovered %d units, phase 1 completed %d", res2.Stats.Recovered, res.Stats.Done)
	}
}

func TestRunLocalMoreShardsThanTargets(t *testing.T) {
	// Shard count above the target count: ShardSplit clamps, so the tail
	// units are legitimately empty. They must round-trip as empty archives
	// and contribute nothing to the merge.
	env := newChaosEnv(t, 16)
	res := env.run(t, 10*time.Second, map[string]*Script{"w1": nil, "w2": nil})
	if len(res.WorkerErrs) != 0 {
		t.Fatalf("worker errors: %v", res.WorkerErrs)
	}
	if res.Stats.Done != env.plan.Units() {
		t.Fatalf("done %d units, want %d", res.Stats.Done, env.plan.Units())
	}
}
