package dsweep

import (
	"context"
	"fmt"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator and tags its shard
	// files; must be unique within one sweep.
	Name string
	// Coord is the control plane: a *Coordinator directly, or a *Client.
	Coord Coordination
	// Store is the shared checkpoint directory shards are flushed into.
	Store *checkpoint.Store
	// Setup builds this worker's scanner and target list for one day —
	// each worker owns its whole exchange stack, so vantage-point fault
	// profiles and transport state never leak between workers.
	Setup scan.DaySetup
	// Chaos, when set, injects scripted faults (tests only).
	Chaos *Script
	// OnEvent, when set, receives progress lines.
	OnEvent func(format string, args ...any)
}

// Worker claims leases from a coordinator, scans its shard through its own
// exchange stack, flushes the result as an owner-tagged checksum-trailered
// shard archive, and reports completion. It keeps no durable state of its
// own: everything it knows is either in the shared checkpoint directory or
// re-derivable, which is what makes killing it at any instant safe.
type Worker struct {
	cfg    WorkerConfig
	claims int

	cachedDay   simtime.Day
	cachedSetup *workerDay
}

// workerDay is one day's materialized scanning environment, cached because
// the coordinator leases a day's shards consecutively.
type workerDay struct {
	scanner *scan.Scanner
	parts   [][]scan.Target
}

// NewWorker validates the configuration and returns a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	switch {
	case cfg.Name == "":
		return nil, fmt.Errorf("dsweep: worker requires a name")
	case cfg.Coord == nil:
		return nil, fmt.Errorf("dsweep: worker requires a coordinator")
	case cfg.Store == nil:
		return nil, fmt.Errorf("dsweep: worker requires a checkpoint store")
	case cfg.Setup == nil:
		return nil, fmt.Errorf("dsweep: worker requires a day setup")
	}
	return &Worker{cfg: cfg}, nil
}

// event emits a progress line if a sink is attached.
func (w *Worker) event(format string, args ...any) {
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(format, args...)
	}
}

// Run claims and completes units until the plan is done, the context is
// cancelled, or a fault (real or chaos-injected) kills the worker.
func (w *Worker) Run(ctx context.Context) error {
	plan, err := w.cfg.Coord.FetchPlan(ctx)
	if err != nil {
		return fmt.Errorf("dsweep: worker %s: fetching plan: %w", w.cfg.Name, err)
	}
	if err := plan.validate(); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.cfg.Coord.Lease(ctx, w.cfg.Name)
		if err != nil {
			return fmt.Errorf("dsweep: worker %s: lease: %w", w.cfg.Name, err)
		}
		switch grant.Status {
		case GrantDone:
			w.event("worker %s: plan complete, exiting", w.cfg.Name)
			return nil
		case GrantWait:
			if err := sleepCtx(ctx, time.Duration(grant.RetryMillis)*time.Millisecond); err != nil {
				return err
			}
		case GrantRun:
			done, err := w.runUnit(ctx, plan, grant)
			if err != nil {
				return err
			}
			if done {
				w.event("worker %s: plan complete, exiting", w.cfg.Name)
				return nil
			}
		default:
			return fmt.Errorf("dsweep: worker %s: unknown grant status %q", w.cfg.Name, grant.Status)
		}
	}
}

// runUnit scans one leased unit, flushes it, and reports completion,
// honouring any chaos event scripted for this claim ordinal. It reports
// whether this completion finished the whole plan — in that case the
// coordinator may stop serving immediately, so the worker must not come
// back for another lease.
func (w *Worker) runUnit(ctx context.Context, plan *Plan, grant *Grant) (bool, error) {
	w.claims++
	ev := w.cfg.Chaos.next(w.claims)
	unit := grant.Unit
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond

	// A stalled worker is one whose heartbeats stop arriving — so the
	// stall injection simply never starts the heartbeat loop.
	stopHB := func() {}
	if ev.Act != ActStall {
		stopHB = w.startHeartbeat(ctx, grant.LeaseID, ttl)
	}
	defer stopHB()

	day, err := w.day(ctx, plan, unit.Day)
	if err != nil {
		return false, err
	}
	// The plan's shard count is fixed, but ShardSplit clamps to the target
	// count — indices past the split are legitimately empty units whose
	// archive contributes zero records to the merge.
	var part []scan.Target
	if unit.Shard < len(day.parts) {
		part = day.parts[unit.Shard]
	}
	snap, health, err := day.scanner.ScanDay(ctx, unit.Day, part)
	if err != nil {
		return false, fmt.Errorf("dsweep: worker %s: unit %s: %w", w.cfg.Name, unit, err)
	}
	snap.Canonicalize()

	switch ev.Act {
	case ActKillBeforeWrite:
		w.event("worker %s: chaos kill before write on %s (claim %d)", w.cfg.Name, unit, w.claims)
		return false, ErrChaosKilled
	case ActStall:
		w.event("worker %s: chaos stall %s on %s (claim %d)", w.cfg.Name, ev.Delay, unit, w.claims)
		if err := sleepCtx(ctx, ev.Delay); err != nil {
			return false, err
		}
	case ActSlowDisk:
		w.event("worker %s: chaos slow disk %s on %s (claim %d)", w.cfg.Name, ev.Delay, unit, w.claims)
		if err := sleepCtx(ctx, ev.Delay); err != nil {
			return false, err
		}
	}

	meta, err := w.cfg.Store.WriteShardAs(unit.Day, unit.Shard, w.cfg.Name, snap)
	if err != nil {
		return false, fmt.Errorf("dsweep: worker %s: flushing %s: %w", w.cfg.Name, unit, err)
	}
	if ev.Act == ActKillAfterWrite {
		w.event("worker %s: chaos kill after write on %s (claim %d)", w.cfg.Name, unit, w.claims)
		return false, ErrChaosKilled
	}
	stopHB()

	reply, err := w.cfg.Coord.Complete(ctx, &CompleteRequest{
		LeaseID:     grant.LeaseID,
		Worker:      w.cfg.Name,
		Unit:        unit,
		Fingerprint: plan.Fingerprint,
		Meta:        meta,
		Health:      health,
	})
	if err != nil {
		return false, fmt.Errorf("dsweep: worker %s: completing %s: %w", w.cfg.Name, unit, err)
	}
	w.event("worker %s: unit %s settled as %s (%d records)", w.cfg.Name, unit, reply.Status, meta.Records)
	return reply.Done, nil
}

// day returns the worker's scanning environment for a day, building it via
// Setup on first use. Only the most recent day is cached: the coordinator
// grants in plan order, so day changes are monotone and rare.
func (w *Worker) day(ctx context.Context, plan *Plan, d simtime.Day) (*workerDay, error) {
	if w.cachedSetup != nil && w.cachedDay == d {
		return w.cachedSetup, nil
	}
	scanner, targets, err := w.cfg.Setup(ctx, d)
	if err != nil {
		return nil, fmt.Errorf("dsweep: worker %s: setup for %s: %w", w.cfg.Name, d, err)
	}
	wd := &workerDay{scanner: scanner, parts: scan.ShardSplit(targets, plan.Shards)}
	w.cachedDay, w.cachedSetup = d, wd
	return wd, nil
}

// startHeartbeat extends the lease on a ttl/3 cadence until stopped. A
// failing heartbeat (lease already expired, coordinator restarted) stops
// the loop but not the unit: the late completion is still settled safely
// by checksum on the coordinator side.
func (w *Worker) startHeartbeat(ctx context.Context, leaseID string, ttl time.Duration) (stop func()) {
	interval := ttl / 3
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if err := w.cfg.Coord.Heartbeat(ctx, leaseID); err != nil {
					w.event("worker %s: heartbeat for %s: %v", w.cfg.Name, leaseID, err)
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// sleepCtx waits d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
