package dsweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator and tags its shard
	// files; must be unique within one sweep.
	Name string
	// Coord is the control plane: a *Coordinator directly, or a *Client.
	Coord Coordination
	// Store is the shared checkpoint directory shards are flushed into.
	Store *checkpoint.Store
	// Setup builds this worker's scanner and target list for one day —
	// each worker owns its whole exchange stack, so vantage-point fault
	// profiles and transport state never leak between workers.
	Setup scan.DaySetup
	// StreamSetup is Setup's streaming counterpart, required when the plan
	// carries a positive Chunk: the worker scans its shard chunk by chunk,
	// durably flushing each chunk, so a kill mid-shard resumes at the last
	// flushed chunk instead of from scratch.
	StreamSetup scan.StreamDaySetup
	// Chaos, when set, injects scripted faults (tests only).
	Chaos *Script
	// OnEvent, when set, receives progress lines.
	OnEvent func(format string, args ...any)
}

// Worker claims leases from a coordinator, scans its shard through its own
// exchange stack, flushes the result as an owner-tagged checksum-trailered
// shard archive, and reports completion. It keeps no durable state of its
// own: everything it knows is either in the shared checkpoint directory or
// re-derivable, which is what makes killing it at any instant safe.
type Worker struct {
	cfg    WorkerConfig
	claims int

	cachedDay    simtime.Day
	cachedSetup  *workerDay
	cachedStream *workerDayStream
}

// workerDay is one day's materialized scanning environment, cached because
// the coordinator leases a day's shards consecutively.
type workerDay struct {
	scanner *scan.Scanner
	parts   [][]scan.Target
}

// workerDayStream is one day's streaming scanning environment: a target
// cursor and per-chunk prepare hook instead of a materialized target list.
type workerDayStream struct {
	scanner *scan.Scanner
	src     scan.TargetSource
	prepare scan.ChunkPrepare
	spans   []scan.Span
	buf     []scan.Target
}

// NewWorker validates the configuration and returns a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	switch {
	case cfg.Name == "":
		return nil, fmt.Errorf("dsweep: worker requires a name")
	case cfg.Coord == nil:
		return nil, fmt.Errorf("dsweep: worker requires a coordinator")
	case cfg.Store == nil:
		return nil, fmt.Errorf("dsweep: worker requires a checkpoint store")
	case cfg.Setup == nil && cfg.StreamSetup == nil:
		return nil, fmt.Errorf("dsweep: worker requires a day setup")
	}
	return &Worker{cfg: cfg}, nil
}

// event emits a progress line if a sink is attached.
func (w *Worker) event(format string, args ...any) {
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(format, args...)
	}
}

// Run claims and completes units until the plan is done, the context is
// cancelled, or a fault (real or chaos-injected) kills the worker.
func (w *Worker) Run(ctx context.Context) error {
	plan, err := w.cfg.Coord.FetchPlan(ctx)
	if err != nil {
		return fmt.Errorf("dsweep: worker %s: fetching plan: %w", w.cfg.Name, err)
	}
	if err := plan.validate(); err != nil {
		return err
	}
	if plan.Chunk > 0 && w.cfg.StreamSetup == nil {
		return fmt.Errorf("dsweep: worker %s: plan wants chunked streaming (chunk=%d) but worker has no StreamSetup", w.cfg.Name, plan.Chunk)
	}
	if plan.Chunk == 0 && w.cfg.Setup == nil {
		return fmt.Errorf("dsweep: worker %s: plan is whole-shard but worker has only a StreamSetup", w.cfg.Name)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.cfg.Coord.Lease(ctx, w.cfg.Name)
		if err != nil {
			return fmt.Errorf("dsweep: worker %s: lease: %w", w.cfg.Name, err)
		}
		switch grant.Status {
		case GrantDone:
			w.event("worker %s: plan complete, exiting", w.cfg.Name)
			return nil
		case GrantWait:
			if err := sleepCtx(ctx, time.Duration(grant.RetryMillis)*time.Millisecond); err != nil {
				return err
			}
		case GrantRun:
			done, err := w.runUnit(ctx, plan, grant)
			if err != nil {
				return err
			}
			if done {
				w.event("worker %s: plan complete, exiting", w.cfg.Name)
				return nil
			}
		default:
			return fmt.Errorf("dsweep: worker %s: unknown grant status %q", w.cfg.Name, grant.Status)
		}
	}
}

// runUnit scans one leased unit, flushes it, and reports completion,
// honouring any chaos event scripted for this claim ordinal. It reports
// whether this completion finished the whole plan — in that case the
// coordinator may stop serving immediately, so the worker must not come
// back for another lease.
func (w *Worker) runUnit(ctx context.Context, plan *Plan, grant *Grant) (bool, error) {
	w.claims++
	ev := w.cfg.Chaos.next(w.claims)
	unit := grant.Unit
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond

	// A stalled worker is one whose heartbeats stop arriving — so the
	// stall injection simply never starts the heartbeat loop.
	stopHB := func() {}
	if ev.Act != ActStall {
		stopHB = w.startHeartbeat(ctx, grant.LeaseID, ttl)
	}
	defer stopHB()

	var (
		snap   *dataset.Snapshot
		health *scan.SweepHealth
		err    error
	)
	if plan.Chunk > 0 {
		snap, health, err = w.scanUnitChunked(ctx, plan, unit, ev)
		if err != nil {
			return false, err
		}
	} else {
		day, err := w.day(ctx, plan, unit.Day)
		if err != nil {
			return false, err
		}
		// The plan's shard count is fixed, but ShardSplit clamps to the
		// target count — indices past the split are legitimately empty units
		// whose archive contributes zero records to the merge.
		var part []scan.Target
		if unit.Shard < len(day.parts) {
			part = day.parts[unit.Shard]
		}
		snap, health, err = day.scanner.ScanDay(ctx, unit.Day, part)
		if err != nil {
			return false, fmt.Errorf("dsweep: worker %s: unit %s: %w", w.cfg.Name, unit, err)
		}
	}
	snap.Canonicalize()

	switch ev.Act {
	case ActKillBeforeWrite:
		w.event("worker %s: chaos kill before write on %s (claim %d)", w.cfg.Name, unit, w.claims)
		return false, ErrChaosKilled
	case ActKillBetweenChunks:
		// On a chunked unit the kill fires inside scanUnitChunked; reaching
		// here means it never triggered (AfterChunks past the shard's chunk
		// count) and the unit completes normally. On a whole-shard unit
		// there are no chunks, so the action degrades to a pre-write kill.
		if plan.Chunk == 0 {
			w.event("worker %s: chaos kill before write on %s (claim %d)", w.cfg.Name, unit, w.claims)
			return false, ErrChaosKilled
		}
	case ActStall:
		w.event("worker %s: chaos stall %s on %s (claim %d)", w.cfg.Name, ev.Delay, unit, w.claims)
		if err := sleepCtx(ctx, ev.Delay); err != nil {
			return false, err
		}
	case ActSlowDisk:
		w.event("worker %s: chaos slow disk %s on %s (claim %d)", w.cfg.Name, ev.Delay, unit, w.claims)
		if err := sleepCtx(ctx, ev.Delay); err != nil {
			return false, err
		}
	}

	meta, err := w.cfg.Store.WriteShardAs(unit.Day, unit.Shard, w.cfg.Name, snap)
	if err != nil {
		return false, fmt.Errorf("dsweep: worker %s: flushing %s: %w", w.cfg.Name, unit, err)
	}
	if ev.Act == ActKillAfterWrite {
		w.event("worker %s: chaos kill after write on %s (claim %d)", w.cfg.Name, unit, w.claims)
		return false, ErrChaosKilled
	}
	stopHB()

	reply, err := w.cfg.Coord.Complete(ctx, &CompleteRequest{
		LeaseID:     grant.LeaseID,
		Worker:      w.cfg.Name,
		Unit:        unit,
		Fingerprint: plan.Fingerprint,
		Meta:        meta,
		Health:      health,
	})
	if err != nil {
		return false, fmt.Errorf("dsweep: worker %s: completing %s: %w", w.cfg.Name, unit, err)
	}
	w.event("worker %s: unit %s settled as %s (%d records)", w.cfg.Name, unit, reply.Status, meta.Records)
	return reply.Done, nil
}

// day returns the worker's scanning environment for a day, building it via
// Setup on first use. Only the most recent day is cached: the coordinator
// grants in plan order, so day changes are monotone and rare.
func (w *Worker) day(ctx context.Context, plan *Plan, d simtime.Day) (*workerDay, error) {
	if w.cachedSetup != nil && w.cachedDay == d {
		return w.cachedSetup, nil
	}
	scanner, targets, err := w.cfg.Setup(ctx, d)
	if err != nil {
		return nil, fmt.Errorf("dsweep: worker %s: setup for %s: %w", w.cfg.Name, d, err)
	}
	wd := &workerDay{scanner: scanner, parts: scan.ShardSplit(targets, plan.Shards)}
	w.cachedDay, w.cachedSetup, w.cachedStream = d, wd, nil
	return wd, nil
}

// dayStream is day's streaming counterpart, caching the cursor and the
// shard spans derived from it.
func (w *Worker) dayStream(ctx context.Context, plan *Plan, d simtime.Day) (*workerDayStream, error) {
	if w.cachedStream != nil && w.cachedDay == d {
		return w.cachedStream, nil
	}
	scanner, src, prepare, err := w.cfg.StreamSetup(ctx, d)
	if err != nil {
		return nil, fmt.Errorf("dsweep: worker %s: setup for %s: %w", w.cfg.Name, d, err)
	}
	wd := &workerDayStream{
		scanner: scanner,
		src:     src,
		prepare: prepare,
		spans:   scan.ShardBounds(src.Len(), plan.Shards),
		buf:     make([]scan.Target, 0, plan.Chunk),
	}
	w.cachedDay, w.cachedStream, w.cachedSetup = d, wd, nil
	return wd, nil
}

// chunkOwner tags this worker's durable chunk files with a hash of the plan
// fingerprint, so a restarted worker trusts only chunks it wrote itself
// under this exact plan — never a stale file from a previous sweep in the
// same directory, and never another worker's chunks, whose vantage-point
// fault profile may legitimately differ.
func (w *Worker) chunkOwner(plan *Plan) string {
	h := fnv.New32a()
	h.Write([]byte(plan.Fingerprint))
	return fmt.Sprintf("%s-%08x", w.cfg.Name, h.Sum32())
}

// scanUnitChunked scans one unit on the streaming path: the shard's cursor
// span is walked in plan.Chunk-sized chunks, each chunk is durably flushed
// as an owner-tagged checksum-trailered file the moment it completes, and
// chunks already flushed by an earlier (killed) incarnation of this worker
// are verified and reused instead of re-scanned. The assembled shard
// snapshot is returned to runUnit, which writes the same whole-shard
// archive a legacy worker would — the coordinator's completion and merge
// protocol never sees the difference.
func (w *Worker) scanUnitChunked(ctx context.Context, plan *Plan, unit UnitID, ev Event) (*dataset.Snapshot, *scan.SweepHealth, error) {
	day, err := w.dayStream(ctx, plan, unit.Day)
	if err != nil {
		return nil, nil, err
	}
	// Indices past the span list are legitimately empty units, as in the
	// legacy path.
	var span scan.Span
	if unit.Shard < len(day.spans) {
		span = day.spans[unit.Shard]
	}
	chunks := 0
	if span.Len() > 0 {
		chunks = (span.Len() + plan.Chunk - 1) / plan.Chunk
	}
	owner := w.chunkOwner(plan)
	snap := &dataset.Snapshot{Day: unit.Day}
	health := &scan.SweepHealth{Day: unit.Day, ByClass: make(map[scan.FailClass]int)}
	flushed := 0
	for c := 0; c < chunks; c++ {
		clo := span.Lo + c*plan.Chunk
		chi := clo + plan.Chunk
		if chi > span.Hi {
			chi = span.Hi
		}
		part, err := w.cfg.Store.LoadChunkAs(unit.Day, unit.Shard, c, owner)
		if err == nil {
			w.event("worker %s: reusing chunk %d/%d of %s (%d records)", w.cfg.Name, c+1, chunks, unit, len(part.Records))
			snap.Records = append(snap.Records, part.Records...)
			health.Merge(scan.HealthFromSnapshot(unit.Day, chi-clo, part))
			continue
		}
		if !errors.Is(err, fs.ErrNotExist) {
			w.event("worker %s: chunk %d/%d of %s damaged (%v), re-scanning", w.cfg.Name, c+1, chunks, unit, err)
		}
		if day.prepare != nil {
			if err := day.prepare(ctx, clo, chi); err != nil {
				return nil, nil, err
			}
		}
		day.buf = scan.CollectTargets(day.src, clo, chi, day.buf)
		part, h, scanErr := day.scanner.ScanDay(ctx, unit.Day, day.buf)
		health.Merge(h)
		if scanErr != nil {
			return nil, nil, fmt.Errorf("dsweep: worker %s: unit %s: %w", w.cfg.Name, unit, scanErr)
		}
		part.Canonicalize()
		if _, err := w.cfg.Store.WriteChunkAs(unit.Day, unit.Shard, c, owner, part); err != nil {
			return nil, nil, fmt.Errorf("dsweep: worker %s: flushing chunk %d of %s: %w", w.cfg.Name, c, unit, err)
		}
		snap.Records = append(snap.Records, part.Records...)
		flushed++
		if ev.Act == ActKillBetweenChunks && flushed >= ev.AfterChunks {
			w.event("worker %s: chaos kill after %d flushed chunks on %s (claim %d)", w.cfg.Name, flushed, unit, w.claims)
			return nil, nil, ErrChaosKilled
		}
	}
	return snap, health, nil
}

// startHeartbeat extends the lease on a ttl/3 cadence until stopped. A
// failing heartbeat (lease already expired, coordinator restarted) stops
// the loop but not the unit: the late completion is still settled safely
// by checksum on the coordinator side.
func (w *Worker) startHeartbeat(ctx context.Context, leaseID string, ttl time.Duration) (stop func()) {
	interval := ttl / 3
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if err := w.cfg.Coord.Heartbeat(ctx, leaseID); err != nil {
					w.event("worker %s: heartbeat for %s: %v", w.cfg.Name, leaseID, err)
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// sleepCtx waits d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
