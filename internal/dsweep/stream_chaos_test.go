package dsweep

// Chaos drills for the chunked (streaming) worker path: whatever is
// injected, the merged archive must stay byte-identical to an
// uninterrupted single-process sweep — and a worker killed between chunks
// must resume its shard from the durable chunk files instead of from
// scratch.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// testStreamSetup builds a StreamDaySetup over the fixed in-memory world:
// a cursor view of the same targets testSetup serves as a slice, with no
// per-chunk prepare work (the ecosystem is fully materialized already).
func testStreamSetup(t *testing.T, eco *dnstest.Ecosystem, targets []scan.Target) scan.StreamDaySetup {
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, scan.TargetSource, scan.ChunkPrepare, error) {
		s, err := scan.New(scan.Config{
			Exchange: eco.Net,
			TLDServers: map[string]string{
				"com": dnstest.TLDServerAddr("com"),
				"nl":  dnstest.TLDServerAddr("nl"),
			},
			Workers: 3,
			Clock:   eco.Clock.Day,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, scan.SliceTargets(targets), nil, nil
	}
}

// eventLog collects progress lines for assertions while echoing to the
// test log.
type eventLog struct {
	t  *testing.T
	mu sync.Mutex
	ls []string
}

func (el *eventLog) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	el.mu.Lock()
	el.ls = append(el.ls, line)
	el.mu.Unlock()
	el.t.Log(line)
}

func (el *eventLog) count(substr string) int {
	el.mu.Lock()
	defer el.mu.Unlock()
	n := 0
	for _, l := range el.ls {
		if strings.Contains(l, substr) {
			n++
		}
	}
	return n
}

// newChunkedEnv builds a chaos env whose plan runs the streaming path in
// chunks of the given size.
func newChunkedEnv(t *testing.T, shards, chunk int) *chaosEnv {
	t.Helper()
	env := newChaosEnv(t, shards)
	env.plan.Fingerprint = fmt.Sprintf("chunk-drill-v1 chunk=%d", chunk)
	env.plan.Chunk = chunk
	return env
}

// runChunked executes RunLocal with streaming workers and asserts the
// merged archive is byte-identical to the whole-shard oracle.
func (env *chaosEnv) runChunked(t *testing.T, ttl time.Duration, scripts map[string]*Script, el *eventLog) *Result {
	t.Helper()
	var workers []WorkerSpec
	for _, name := range sortedKeys(scripts) {
		workers = append(workers, WorkerSpec{
			Name:        name,
			StreamSetup: testStreamSetup(t, env.eco, env.targets),
			Chaos:       scripts[name],
		})
	}
	store, res, err := RunLocal(context.Background(), LocalConfig{
		Plan: env.plan, Store: env.store, LeaseTTL: ttl, Workers: workers,
		OnEvent: el.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := store.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.want, got.Bytes()) {
		t.Errorf("chunked distributed archive differs from uninterrupted whole-shard sweep:\n--- want\n%s\n--- got\n%s",
			env.want, got.String())
	}
	return res
}

func TestRunLocalChunkedCleanByteIdentical(t *testing.T) {
	env := newChunkedEnv(t, 3, 2)
	el := &eventLog{t: t}
	res := env.runChunked(t, 10*time.Second, map[string]*Script{"w1": nil, "w2": nil}, el)
	if len(res.WorkerErrs) != 0 {
		t.Fatalf("worker errors in clean run: %v", res.WorkerErrs)
	}
	if res.Stats.Done != env.plan.Units() {
		t.Fatalf("done %d units, want %d", res.Stats.Done, env.plan.Units())
	}
	// Per-worker attribution still covers the whole sweep under chunking.
	total := 0
	for _, h := range res.HealthByWorker {
		total += h.Targets
	}
	if want := len(env.targets) * len(env.days); total != want {
		t.Fatalf("per-worker targets %d, want %d", total, want)
	}
}

func TestRunLocalChunkedKillBetweenChunksResumes(t *testing.T) {
	env := newChunkedEnv(t, 3, 2)
	el := &eventLog{t: t}

	// Phase 1: the only worker is SIGKILLed after durably flushing one
	// chunk of its first unit. The sweep halts with a partial shard on disk.
	_, res, err := RunLocal(context.Background(), LocalConfig{
		Plan: env.plan, Store: env.store, LeaseTTL: 200 * time.Millisecond,
		Workers: []WorkerSpec{{
			Name:        "w1",
			StreamSetup: testStreamSetup(t, env.eco, env.targets),
			Chaos:       NewScript(Event{Claim: 1, Act: ActKillBetweenChunks, AfterChunks: 1}),
		}},
		OnEvent: el.logf,
	})
	if err == nil {
		t.Fatal("phase 1 succeeded despite its only worker dying")
	}
	if !errors.Is(res.WorkerErrs["w1"], ErrChaosKilled) {
		t.Fatalf("w1 error: %v", res.WorkerErrs["w1"])
	}
	if el.count("chaos kill after 1 flushed chunks") == 0 {
		t.Fatal("kill-between-chunks never fired")
	}

	// Phase 2: the same worker restarts over the same directory. Its first
	// re-claimed unit must reuse the flushed chunk by checksum instead of
	// re-scanning it, and the finished archive must be byte-identical.
	res2 := env.runChunked(t, 200*time.Millisecond, map[string]*Script{"w1": nil}, el)
	if len(res2.WorkerErrs) != 0 {
		t.Fatalf("phase 2 worker errors: %v", res2.WorkerErrs)
	}
	if el.count("reusing chunk") == 0 {
		t.Fatal("restarted worker re-scanned its flushed chunk instead of reusing it")
	}
}

func TestRunLocalChunkedOwnerTagIsolation(t *testing.T) {
	env := newChunkedEnv(t, 3, 2)
	el := &eventLog{t: t}

	// Phase 1: w1 dies after flushing one chunk.
	_, _, err := RunLocal(context.Background(), LocalConfig{
		Plan: env.plan, Store: env.store, LeaseTTL: 200 * time.Millisecond,
		Workers: []WorkerSpec{{
			Name:        "w1",
			StreamSetup: testStreamSetup(t, env.eco, env.targets),
			Chaos:       NewScript(Event{Claim: 1, Act: ActKillBetweenChunks, AfterChunks: 1}),
		}},
		OnEvent: el.logf,
	})
	if err == nil {
		t.Fatal("phase 1 succeeded despite its only worker dying")
	}

	// Phase 2: a DIFFERENT worker takes over. w1's chunks are owner-tagged
	// (another vantage point may legitimately measure differently), so w2
	// must re-scan from scratch — and still merge byte-identical.
	res := env.runChunked(t, 200*time.Millisecond, map[string]*Script{"w2": nil}, el)
	if len(res.WorkerErrs) != 0 {
		t.Fatalf("phase 2 worker errors: %v", res.WorkerErrs)
	}
	if el.count("reusing chunk") != 0 {
		t.Fatal("w2 reused another worker's owner-tagged chunks")
	}
}

func TestWorkerRefusesChunkSetupMismatch(t *testing.T) {
	eco, targets := buildTestWorld(t)
	days := []simtime.Day{eco.Clock.Day()}

	// A chunked plan needs a StreamSetup; a whole-shard plan needs a Setup.
	for _, tc := range []struct {
		name string
		plan Plan
		cfg  WorkerConfig
	}{
		{
			name: "chunked plan, legacy-only worker",
			plan: Plan{Fingerprint: "fp chunk=2", Days: days, Shards: 2, Chunk: 2},
			cfg:  WorkerConfig{Name: "w1", Setup: testSetup(t, eco, targets)},
		},
		{
			name: "whole-shard plan, stream-only worker",
			plan: Plan{Fingerprint: "fp", Days: days, Shards: 2},
			cfg:  WorkerConfig{Name: "w1", StreamSetup: testStreamSetup(t, eco, targets)},
		},
	} {
		st, err := checkpoint.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(CoordinatorConfig{Plan: tc.plan, Store: st, LeaseTTL: time.Second})
		if err != nil {
			t.Fatalf("%s: coordinator: %v", tc.name, err)
		}
		tc.cfg.Store = st
		tc.cfg.Coord = coord
		w, err := NewWorker(tc.cfg)
		if err != nil {
			t.Fatalf("%s: NewWorker: %v", tc.name, err)
		}
		if err := w.Run(context.Background()); err == nil {
			t.Errorf("%s: Run accepted the mismatch", tc.name)
		}
		coord.Close()
	}

	// Negative chunk sizes never validate.
	bad := Plan{Fingerprint: "fp", Days: days, Shards: 1, Chunk: -1}
	if err := bad.validate(); err == nil {
		t.Error("negative plan chunk accepted")
	}
}
