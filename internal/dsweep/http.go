package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The HTTP control plane: four JSON endpoints mirroring Coordination.
// Shard bytes never travel over it — workers flush archives into the
// shared checkpoint directory; the control plane carries only leases and
// checksums, so it stays small enough to reason about under partial
// failure (a lost reply at worst costs one lease TTL).

// NewHandler exposes a coordinator over HTTP.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /plan", func(w http.ResponseWriter, r *http.Request) {
		plan, err := c.FetchPlan(r.Context())
		reply(w, plan, err)
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
		}
		if !decode(w, r, &req) {
			return
		}
		grant, err := c.Lease(r.Context(), req.Worker)
		reply(w, grant, err)
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			LeaseID string `json:"lease_id"`
		}
		if !decode(w, r, &req) {
			return
		}
		reply(w, struct{}{}, c.Heartbeat(r.Context(), req.LeaseID))
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		req := &CompleteRequest{}
		if !decode(w, r, req) {
			return
		}
		rep, err := c.Complete(r.Context(), req)
		reply(w, rep, err)
	})
	return mux
}

// decode reads a JSON request body, answering 400 on garbage.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes a JSON response, mapping coordinator errors to 409: every
// Coordination error is a state conflict (wrong fingerprint, unknown
// lease), not a transport failure, and the worker decides what to do.
func reply(w http.ResponseWriter, value any, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(value)
}

// Client is the worker-side Coordination over HTTP.
type Client struct {
	// Base is the coordinator's base URL ("http://host:port").
	Base string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// httpClient returns the effective client.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// call performs one JSON round trip.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dsweep: coordinator %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

// FetchPlan implements Coordination.
func (c *Client) FetchPlan(ctx context.Context) (*Plan, error) {
	plan := &Plan{}
	if err := c.call(ctx, http.MethodGet, "/plan", nil, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// Lease implements Coordination.
func (c *Client) Lease(ctx context.Context, worker string) (*Grant, error) {
	grant := &Grant{}
	in := struct {
		Worker string `json:"worker"`
	}{worker}
	if err := c.call(ctx, http.MethodPost, "/lease", in, grant); err != nil {
		return nil, err
	}
	return grant, nil
}

// Heartbeat implements Coordination.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	in := struct {
		LeaseID string `json:"lease_id"`
	}{leaseID}
	return c.call(ctx, http.MethodPost, "/heartbeat", in, nil)
}

// Complete implements Coordination.
func (c *Client) Complete(ctx context.Context, req *CompleteRequest) (*CompleteReply, error) {
	rep := &CompleteReply{}
	if err := c.call(ctx, http.MethodPost, "/complete", req, rep); err != nil {
		return nil, err
	}
	return rep, nil
}
