package dsweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// WorkerSpec declares one in-process worker for RunLocal.
type WorkerSpec struct {
	// Name identifies the worker; must be unique within the topology.
	Name string
	// Setup builds the worker's scanning environment per day.
	Setup scan.DaySetup
	// StreamSetup is Setup's streaming counterpart, required when the plan
	// carries a positive Chunk.
	StreamSetup scan.StreamDaySetup
	// Chaos, when set, injects scripted faults into this worker.
	Chaos *Script
}

// LocalConfig configures RunLocal.
type LocalConfig struct {
	Plan     Plan
	Store    *checkpoint.Store
	LeaseTTL time.Duration
	Workers  []WorkerSpec
	// OnEvent receives coordinator and worker progress lines.
	OnEvent func(format string, args ...any)
	// Now overrides the coordinator clock (tests).
	Now func() time.Time
}

// Result is RunLocal's outcome accounting.
type Result struct {
	// Stats is the coordinator's fault accounting.
	Stats Stats
	// HealthByDay and HealthByWorker are the merged sweep-health reports.
	HealthByDay    map[simtime.Day]*scan.SweepHealth
	HealthByWorker map[string]*scan.SweepHealth
	// WorkerErrs maps worker name to its terminal error, for workers that
	// died (chaos kills, context cancellation). A sweep can still succeed
	// with dead workers as long as at least one survivor finished the plan.
	WorkerErrs map[string]error
}

// RunLocal runs a complete coordinator + N in-process workers topology to
// completion: every worker drains the plan concurrently, dead workers are
// tolerated while at least one survives, and the final archive is the
// coordinator's CRC-verified merge. The checkpoint directory is left
// intact for the caller to Clear once the merged archive is durable.
func RunLocal(ctx context.Context, cfg LocalConfig) (*dataset.Store, *Result, error) {
	if len(cfg.Workers) == 0 {
		return nil, nil, fmt.Errorf("dsweep: RunLocal needs at least one worker")
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Plan:     cfg.Plan,
		Store:    cfg.Store,
		LeaseTTL: cfg.LeaseTTL,
		Now:      cfg.Now,
		OnEvent:  cfg.OnEvent,
	})
	if err != nil {
		return nil, nil, err
	}
	defer coord.Close()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[string]error)
	)
	for _, ws := range cfg.Workers {
		w, err := NewWorker(WorkerConfig{
			Name:        ws.Name,
			Coord:       coord,
			Store:       cfg.Store,
			Setup:       ws.Setup,
			StreamSetup: ws.StreamSetup,
			Chaos:       ws.Chaos,
			OnEvent:     cfg.OnEvent,
		})
		if err != nil {
			return nil, nil, err
		}
		wg.Add(1)
		go func(w *Worker, name string) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				mu.Lock()
				errs[name] = err
				mu.Unlock()
			}
		}(w, ws.Name)
	}
	wg.Wait()

	res := &Result{Stats: coord.Stats(), WorkerErrs: errs}
	res.HealthByDay, res.HealthByWorker = coord.Health()

	select {
	case <-coord.Done():
	default:
		// Every worker exited without finishing the plan — all killed by
		// chaos, or the context was cancelled. The checkpoint and the
		// coordinator state survive for a re-run.
		if err := ctx.Err(); err != nil {
			return nil, res, err
		}
		return nil, res, fmt.Errorf("dsweep: all %d workers died with %d/%d units done (errors: %v)",
			len(cfg.Workers), res.Stats.Done, cfg.Plan.Units(), joinWorkerErrs(errs))
	}

	store, err := coord.Merge()
	if err != nil {
		return nil, res, err
	}
	return store, res, nil
}

// joinWorkerErrs renders the worker error map compactly.
func joinWorkerErrs(errs map[string]error) error {
	var parts []error
	for name, err := range errs {
		parts = append(parts, fmt.Errorf("%s: %w", name, err))
	}
	return errors.Join(parts...)
}
