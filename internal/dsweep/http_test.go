package dsweep

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHTTPTopologyByteIdentical runs the full control plane over real
// HTTP: a coordinator behind NewHandler, two workers speaking through
// Client, one of them chaos-killed mid-shard. The merged archive must
// still match the single-process oracle.
func TestHTTPTopologyByteIdentical(t *testing.T) {
	env := newChaosEnv(t, 3)
	coord, err := NewCoordinator(CoordinatorConfig{
		Plan: env.plan, Store: env.store, LeaseTTL: 300 * time.Millisecond, OnEvent: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	scripts := map[string]*Script{
		"hw1": NewScript(Event{Claim: 1, Act: ActKillBeforeWrite}),
		"hw2": nil,
	}
	var wg sync.WaitGroup
	errs := make(map[string]error)
	var mu sync.Mutex
	for _, name := range sortedKeys(scripts) {
		w, err := NewWorker(WorkerConfig{
			Name:  name,
			Coord: &Client{Base: srv.URL},
			Store: env.store,
			Setup: testSetup(t, env.eco, env.targets),
			Chaos: scripts[name],
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := w.Run(context.Background()); err != nil {
				mu.Lock()
				errs[name] = err
				mu.Unlock()
			}
		}(name)
	}
	wg.Wait()

	select {
	case <-coord.Done():
	default:
		t.Fatalf("plan not finished over HTTP (worker errors: %v)", errs)
	}
	if errs["hw1"] == nil || !strings.Contains(errs["hw1"].Error(), "chaos") {
		t.Fatalf("hw1 should have been chaos-killed: %v", errs["hw1"])
	}
	store, err := coord.Merge()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := store.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.want, got.Bytes()) {
		t.Error("HTTP-topology archive differs from single-process sweep")
	}
	if coord.Stats().Releases == 0 {
		t.Fatalf("killed HTTP worker's lease never expired: %+v", coord.Stats())
	}
}

// TestHTTPErrorMapping checks that coordinator-side conflicts surface as
// client errors with the coordinator's message, not as decode garbage.
func TestHTTPErrorMapping(t *testing.T) {
	env := newChaosEnv(t, 2)
	coord, err := NewCoordinator(CoordinatorConfig{Plan: env.plan, Store: env.store})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	if _, err := client.Lease(ctx, ""); err == nil || !strings.Contains(err.Error(), "worker id") {
		t.Fatalf("empty worker id: %v", err)
	}
	if err := client.Heartbeat(ctx, "L999999"); err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Fatalf("bogus heartbeat: %v", err)
	}
	g, err := client.Lease(ctx, "w1")
	if err != nil || g.Status != GrantRun {
		t.Fatalf("lease: %+v, %v", g, err)
	}
	meta := flush(t, env.store, g.Unit, "w1", makeSnap(g.Unit.Day, "a.com"))
	if _, err := client.Complete(ctx, &CompleteRequest{
		LeaseID: g.LeaseID, Worker: "w1", Unit: g.Unit,
		Fingerprint: "wrong-fingerprint", Meta: meta,
	}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("wrong fingerprint: %v", err)
	}

	// The plan fetched over HTTP round-trips intact.
	plan, err := client.FetchPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fingerprint != env.plan.Fingerprint || len(plan.Days) != len(env.plan.Days) || plan.Shards != env.plan.Shards {
		t.Fatalf("plan round-trip: %+v", plan)
	}
}
