package dsweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// coordStateFile is the coordinator's durable state inside the checkpoint
// directory: completed units with their checksums, outstanding leases, and
// the sweep's fault counters. It is rewritten atomically after every
// mutation, so a coordinator killed at any instant restarts into a
// consistent lease table.
const coordStateFile = "coordinator.json"

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Plan is the sweep's work definition.
	Plan Plan
	// Store is the shared checkpoint directory workers flush shards into.
	Store *checkpoint.Store
	// LeaseTTL is the lease deadline budget (default 30s). A worker that
	// neither completes nor heartbeats within it loses the unit.
	LeaseTTL time.Duration
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
	// OnEvent, when set, receives progress lines.
	OnEvent func(format string, args ...any)
}

// Stats is the coordinator's fault accounting.
type Stats struct {
	// Units is the plan's total work unit count.
	Units int `json:"units"`
	// Done is the number of completed units.
	Done int `json:"done"`
	// Recovered counts units restored as already-complete from persisted
	// state at startup (a coordinator restart).
	Recovered int `json:"recovered"`
	// Releases counts expired leases returned to the pool for re-leasing.
	Releases int `json:"releases"`
	// Duplicates counts completions of already-done units with identical
	// checksums (stragglers finishing after a re-lease).
	Duplicates int `json:"duplicates"`
	// Divergent counts completions of already-done units with different
	// checksums (distinct vantage-point profiles); settled by value order.
	Divergent int `json:"divergent"`
	// Rejected counts completions whose shard archive failed verification.
	Rejected int `json:"rejected"`
}

// unit is one work unit's live state.
type unit struct {
	meta   *checkpoint.Shard // non-nil once the unit is done
	worker string            // completer (first accepted, or divergence winner)
	lease  *lease            // active lease, nil when pending or done
}

// lease is one outstanding work grant.
type lease struct {
	id      string
	unit    UnitID
	worker  string
	expires time.Time
}

// Coordinator owns a sweep plan: it grants leases over (day, shard) units,
// re-leases expired ones, settles duplicate completions by checksum,
// persists every state change, and performs the final CRC-verified merge.
// Its lease/heartbeat/complete methods are safe for concurrent use and
// implement Coordination directly for in-process workers.
type Coordinator struct {
	cfg   CoordinatorConfig
	order []UnitID // deterministic grant order: plan days × shard index

	mu        sync.Mutex
	units     map[UnitID]*unit
	leases    map[string]*lease
	seq       int
	stats     Stats
	healthDay map[simtime.Day]*scan.SweepHealth
	healthWkr map[string]*scan.SweepHealth
	doneCh    chan struct{}
	release   func() error // checkpoint dir lock
}

// NewCoordinator opens (and locks) the checkpoint directory, restores any
// persisted coordinator state under the same plan fingerprint, and returns
// a coordinator ready to grant leases. State persisted under a different
// fingerprint is refused rather than mixed in.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Plan.validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("dsweep: coordinator requires a checkpoint store")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	release, err := cfg.Store.AcquireLock("dsweep-coordinator", cfg.Plan.Fingerprint)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		units:     make(map[UnitID]*unit),
		leases:    make(map[string]*lease),
		healthDay: make(map[simtime.Day]*scan.SweepHealth),
		healthWkr: make(map[string]*scan.SweepHealth),
		doneCh:    make(chan struct{}),
		release:   release,
	}
	c.stats.Units = cfg.Plan.Units()
	for _, day := range cfg.Plan.Days {
		for k := 0; k < cfg.Plan.Shards; k++ {
			id := UnitID{Day: day, Shard: k}
			c.order = append(c.order, id)
			c.units[id] = &unit{}
		}
	}
	if err := c.restore(); err != nil {
		release()
		return nil, err
	}
	if c.allDoneLocked() {
		close(c.doneCh)
	}
	return c, nil
}

// event emits a progress line if a sink is attached.
func (c *Coordinator) event(format string, args ...any) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(format, args...)
	}
}

// Close releases the checkpoint directory lock. The persisted state stays
// behind for a restart; use Clear after a successful merge instead.
func (c *Coordinator) Close() error {
	if c.release == nil {
		return nil
	}
	rel := c.release
	c.release = nil
	return rel()
}

// Clear removes the coordinator state file and every shard archive — for
// after the merged archive is durably on disk.
func (c *Coordinator) Clear() error {
	if err := os.Remove(filepath.Join(c.cfg.Store.Dir(), coordStateFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return c.cfg.Store.Clear()
}

// Done is closed once every unit of the plan is complete.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Stats returns a snapshot of the fault accounting.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Done = c.doneCountLocked()
	return s
}

// Health returns the merged per-day and per-worker sweep health reports.
// Attribution follows accepted completions: a straggler's duplicate report
// is not double-counted.
func (c *Coordinator) Health() (byDay map[simtime.Day]*scan.SweepHealth, byWorker map[string]*scan.SweepHealth) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byDay = make(map[simtime.Day]*scan.SweepHealth, len(c.healthDay))
	for d, h := range c.healthDay {
		merged := &scan.SweepHealth{Day: d}
		merged.Merge(h)
		byDay[d] = merged
	}
	byWorker = make(map[string]*scan.SweepHealth, len(c.healthWkr))
	for w, h := range c.healthWkr {
		merged := &scan.SweepHealth{Day: h.Day}
		merged.Merge(h)
		byWorker[w] = merged
	}
	return byDay, byWorker
}

// FetchPlan implements Coordination.
func (c *Coordinator) FetchPlan(context.Context) (*Plan, error) {
	plan := c.cfg.Plan
	plan.Days = append([]simtime.Day(nil), c.cfg.Plan.Days...)
	return &plan, nil
}

// expireLocked sweeps the lease table, returning expired units to the
// pool. Reports whether anything changed.
func (c *Coordinator) expireLocked(now time.Time) bool {
	changed := false
	for id, l := range c.leases {
		if !now.After(l.expires) {
			continue
		}
		delete(c.leases, id)
		u := c.units[l.unit]
		if u != nil && u.lease == l {
			u.lease = nil
			c.stats.Releases++
			changed = true
			c.event("coordinator: lease %s on %s (worker %s) expired; unit returns to the pool", id, l.unit, l.worker)
		}
	}
	return changed
}

// Lease implements Coordination: grant the first pending unit in plan
// order, after returning any expired leases to the pool.
func (c *Coordinator) Lease(_ context.Context, worker string) (*Grant, error) {
	if worker == "" {
		return nil, fmt.Errorf("dsweep: lease request without a worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	changed := c.expireLocked(now)
	var grant *Grant
	anyLeased := false
	for _, id := range c.order {
		u := c.units[id]
		if u.meta != nil {
			continue
		}
		if u.lease != nil {
			anyLeased = true
			continue
		}
		c.seq++
		l := &lease{
			id:      fmt.Sprintf("L%06d", c.seq),
			unit:    id,
			worker:  worker,
			expires: now.Add(c.cfg.LeaseTTL),
		}
		u.lease = l
		c.leases[l.id] = l
		grant = &Grant{Status: GrantRun, LeaseID: l.id, Unit: id, TTLMillis: c.cfg.LeaseTTL.Milliseconds()}
		changed = true
		break
	}
	if changed {
		if err := c.saveLocked(); err != nil {
			return nil, err
		}
	}
	if grant != nil {
		c.event("coordinator: leased %s to %s (%s)", grant.Unit, worker, grant.LeaseID)
		return grant, nil
	}
	if anyLeased {
		retry := c.cfg.LeaseTTL / 8
		if retry < 10*time.Millisecond {
			retry = 10 * time.Millisecond
		}
		if retry > time.Second {
			retry = time.Second
		}
		return &Grant{Status: GrantWait, RetryMillis: retry.Milliseconds()}, nil
	}
	return &Grant{Status: GrantDone}, nil
}

// Heartbeat implements Coordination: extend the lease's deadline. An
// unknown lease (expired and re-granted, or pre-restart) is an error the
// worker may ignore — its completion will still be settled by checksum.
func (c *Coordinator) Heartbeat(_ context.Context, leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[leaseID]
	if l == nil {
		return fmt.Errorf("dsweep: unknown or expired lease %s", leaseID)
	}
	l.expires = c.cfg.Now().Add(c.cfg.LeaseTTL)
	return nil
}

// sameShard reports whether two completions carry identical shard bytes.
// File names are excluded: each worker writes its own owner-tagged file,
// and identical CRC+length over the same archive section format means
// identical content.
func sameShard(a, b *checkpoint.Shard) bool {
	return a.CRC == b.CRC && a.Records == b.Records
}

// shardLess is the deterministic value ordering that settles divergent
// duplicate completions independently of arrival order: smallest
// (CRC, records, file name) wins.
func shardLess(a, b *checkpoint.Shard) bool {
	if a.CRC != b.CRC {
		return a.CRC < b.CRC
	}
	if a.Records != b.Records {
		return a.Records < b.Records
	}
	return a.File < b.File
}

// Complete implements Coordination: settle a completion report. The shard
// archive is re-read and CRC-verified before it is trusted; a duplicate of
// an already-done unit is resolved by checksum, never by arrival order.
func (c *Coordinator) Complete(_ context.Context, req *CompleteRequest) (*CompleteReply, error) {
	if req == nil || req.Meta == nil {
		return nil, fmt.Errorf("dsweep: empty completion")
	}
	if req.Fingerprint != c.cfg.Plan.Fingerprint {
		return nil, fmt.Errorf("dsweep: completion for fingerprint %q, this sweep is %q", req.Fingerprint, c.cfg.Plan.Fingerprint)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.units[req.Unit]
	if u == nil {
		return nil, fmt.Errorf("dsweep: completion for unknown unit %s", req.Unit)
	}
	// The reporting lease is spent either way.
	if l := c.leases[req.LeaseID]; l != nil {
		delete(c.leases, req.LeaseID)
		if lu := c.units[l.unit]; lu != nil && lu.lease == l {
			lu.lease = nil
		}
	}

	if u.meta != nil {
		// Straggler: the unit was re-leased and already completed by
		// someone. Same bytes → idempotent acknowledgement; different
		// bytes → the fixed value ordering picks the winner.
		c.stats.Duplicates++
		status := CompleteDuplicate
		if !sameShard(u.meta, req.Meta) {
			c.stats.Divergent++
			status = CompleteDivergent
			c.event("coordinator: divergent duplicate for %s (have crc %08x from %s, got %08x from %s)",
				req.Unit, u.meta.CRC, u.worker, req.Meta.CRC, req.Worker)
			if shardLess(req.Meta, u.meta) {
				u.meta, u.worker = req.Meta, req.Worker
			}
		}
		if err := c.saveLocked(); err != nil {
			return nil, err
		}
		return &CompleteReply{Status: status, Done: c.allDoneLocked()}, nil
	}

	// First completion: verify the flushed shard before trusting it. A
	// worker with a sick disk must not poison the merge.
	if _, err := c.cfg.Store.LoadShard(req.Unit.Day, req.Unit.Shard, req.Meta); err != nil {
		c.stats.Rejected++
		c.event("coordinator: rejected completion of %s from %s: %v", req.Unit, req.Worker, err)
		if serr := c.saveLocked(); serr != nil {
			return nil, serr
		}
		return &CompleteReply{Status: CompleteRejected}, nil
	}
	u.meta, u.worker = req.Meta, req.Worker
	c.mergeHealthLocked(req)
	if err := c.saveLocked(); err != nil {
		return nil, err
	}
	c.event("coordinator: %s completed by %s (%d records, crc %08x) — %d/%d units done",
		req.Unit, req.Worker, req.Meta.Records, req.Meta.CRC, c.doneCountLocked(), len(c.order))
	done := c.allDoneLocked()
	if done {
		close(c.doneCh)
	}
	return &CompleteReply{Status: CompleteAccepted, Done: done}, nil
}

// mergeHealthLocked folds an accepted completion's health report into the
// per-day and per-worker aggregates.
func (c *Coordinator) mergeHealthLocked(req *CompleteRequest) {
	if req.Health == nil {
		return
	}
	dh := c.healthDay[req.Unit.Day]
	if dh == nil {
		dh = &scan.SweepHealth{Day: req.Unit.Day}
		c.healthDay[req.Unit.Day] = dh
	}
	dh.Merge(req.Health)
	wh := c.healthWkr[req.Worker]
	if wh == nil {
		wh = &scan.SweepHealth{Day: req.Unit.Day}
		c.healthWkr[req.Worker] = wh
	}
	wh.Merge(req.Health)
}

// doneCountLocked counts completed units.
func (c *Coordinator) doneCountLocked() int {
	n := 0
	for _, u := range c.units {
		if u.meta != nil {
			n++
		}
	}
	return n
}

// allDoneLocked reports whether every unit is complete.
func (c *Coordinator) allDoneLocked() bool { return c.doneCountLocked() == len(c.order) }

// Merge assembles the final archive: every unit's chosen shard is
// re-loaded and CRC-verified, and records are concatenated in plan order
// (days in plan order, shards in index order) — the exact assembly a
// single-process ResumableSweep performs, so the output bytes match.
func (c *Coordinator) Merge() (*dataset.Store, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.allDoneLocked() {
		return nil, fmt.Errorf("dsweep: merge before completion (%d/%d units done)", c.doneCountLocked(), len(c.order))
	}
	store := dataset.NewStore()
	for _, day := range c.cfg.Plan.Days {
		daySnap := &dataset.Snapshot{Day: day}
		for k := 0; k < c.cfg.Plan.Shards; k++ {
			id := UnitID{Day: day, Shard: k}
			u := c.units[id]
			snap, err := c.cfg.Store.LoadShard(day, k, u.meta)
			if err != nil {
				return nil, fmt.Errorf("dsweep: merge: unit %s: %w", id, err)
			}
			daySnap.Records = append(daySnap.Records, snap.Records...)
		}
		store.Add(daySnap)
	}
	return store, nil
}
