package dsweep

import (
	"context"
	"strings"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// fakeClock is a hand-cranked time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func day(n int) simtime.Day                  { return simtime.Day(n) }
func testPlan(shards int, days ...int) Plan {
	p := Plan{Fingerprint: "test-plan-v1", Shards: shards}
	for _, d := range days {
		p.Days = append(p.Days, day(d))
	}
	return p
}

// makeSnap fabricates a canonical snapshot with n records for a day.
func makeSnap(d simtime.Day, names ...string) *dataset.Snapshot {
	snap := &dataset.Snapshot{Day: d}
	for _, name := range names {
		snap.Records = append(snap.Records, dataset.Record{Domain: name, TLD: "com", Operator: "op.net"})
	}
	snap.Canonicalize()
	return snap
}

// openStore opens a checkpoint store in a fresh temp dir.
func openStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// flush writes a unit's snapshot as the given owner and returns its meta.
func flush(t *testing.T, st *checkpoint.Store, u UnitID, owner string, snap *dataset.Snapshot) *checkpoint.Shard {
	t.Helper()
	meta, err := st.WriteShardAs(u.Day, u.Shard, owner, snap)
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

// complete reports a unit done and asserts the settled status.
func complete(t *testing.T, c *Coordinator, leaseID, worker string, u UnitID, meta *checkpoint.Shard, want CompleteStatus) {
	t.Helper()
	rep, err := c.Complete(context.Background(), &CompleteRequest{
		LeaseID: leaseID, Worker: worker, Unit: u,
		Fingerprint: c.cfg.Plan.Fingerprint, Meta: meta,
		Health: &scan.SweepHealth{Day: u.Day, Targets: meta.Records, Measured: meta.Records},
	})
	if err != nil {
		t.Fatalf("complete %s: %v", u, err)
	}
	if rep.Status != want {
		t.Fatalf("complete %s: status %q, want %q", u, rep.Status, want)
	}
}

func TestCoordinatorLeasesInPlanOrderAndMerges(t *testing.T) {
	st := openStore(t)
	clock := newFakeClock()
	c, err := NewCoordinator(CoordinatorConfig{Plan: testPlan(2, 10, 11), Store: st, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	wantOrder := []UnitID{{day(10), 0}, {day(10), 1}, {day(11), 0}, {day(11), 1}}
	names := [][]string{{"a.com", "b.com"}, {"c.com"}, {"d.com", "e.com"}, {"f.com"}}
	for i, want := range wantOrder {
		g, err := c.Lease(ctx, "w1")
		if err != nil {
			t.Fatal(err)
		}
		if g.Status != GrantRun || g.Unit != want {
			t.Fatalf("lease %d: got %+v, want unit %s", i, g, want)
		}
		snap := makeSnap(want.Day, names[i]...)
		complete(t, c, g.LeaseID, "w1", want, flush(t, st, want, "w1", snap), CompleteAccepted)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("plan complete but Done not closed")
	}
	g, err := c.Lease(ctx, "w2")
	if err != nil || g.Status != GrantDone {
		t.Fatalf("post-completion lease: %+v, %v", g, err)
	}

	store, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("merged days: %d", store.Len())
	}
	if got := len(store.Get(day(10)).Records); got != 3 {
		t.Fatalf("day 10 records: %d", got)
	}
	if got := store.Get(day(11)).Records[0].Domain; got != "d.com" {
		t.Fatalf("shard order lost in merge: first record %s", got)
	}
	byDay, byWorker := c.Health()
	if byDay[day(10)].Measured != 3 || byWorker["w1"].Measured != 6 {
		t.Fatalf("health attribution: day=%+v worker=%+v", byDay[day(10)], byWorker["w1"])
	}
}

func TestCoordinatorExpiredLeaseIsReleased(t *testing.T) {
	st := openStore(t)
	clock := newFakeClock()
	c, err := NewCoordinator(CoordinatorConfig{Plan: testPlan(1, 10), Store: st, Now: clock.now, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	g1, _ := c.Lease(ctx, "w1")
	if g1.Status != GrantRun {
		t.Fatalf("first lease: %+v", g1)
	}
	// While the lease is live, a second worker must wait.
	if g, _ := c.Lease(ctx, "w2"); g.Status != GrantWait || g.RetryMillis <= 0 {
		t.Fatalf("concurrent lease: %+v", g)
	}
	// Heartbeat extends: half a TTL later + heartbeat + half a TTL later
	// must still be w1's lease.
	clock.advance(600 * time.Millisecond)
	if err := c.Heartbeat(ctx, g1.LeaseID); err != nil {
		t.Fatal(err)
	}
	clock.advance(600 * time.Millisecond)
	if g, _ := c.Lease(ctx, "w2"); g.Status != GrantWait {
		t.Fatalf("lease stolen despite heartbeat: %+v", g)
	}
	// Past the extended deadline the unit is re-leased.
	clock.advance(2 * time.Second)
	g2, _ := c.Lease(ctx, "w2")
	if g2.Status != GrantRun || g2.Unit != g1.Unit {
		t.Fatalf("expired unit not re-leased: %+v", g2)
	}
	if s := c.Stats(); s.Releases != 1 {
		t.Fatalf("releases: %d", s.Releases)
	}
	// The old lease is dead for heartbeats...
	if err := c.Heartbeat(ctx, g1.LeaseID); err == nil {
		t.Fatal("heartbeat on expired lease succeeded")
	}
	// ...but its late completion still settles (after w2 completes first).
	u := g2.Unit
	snap := makeSnap(u.Day, "a.com")
	meta := flush(t, st, u, "w2", snap)
	complete(t, c, g2.LeaseID, "w2", u, meta, CompleteAccepted)
	lateMeta := flush(t, st, u, "w1", snap)
	complete(t, c, g1.LeaseID, "w1", u, lateMeta, CompleteDuplicate)
	if s := c.Stats(); s.Duplicates != 1 || s.Divergent != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCoordinatorDivergentDuplicateSettledByValue(t *testing.T) {
	// Run both arrival orders: the surviving checksum must be the same.
	for _, swap := range []bool{false, true} {
		st := openStore(t)
		clock := newFakeClock()
		c, err := NewCoordinator(CoordinatorConfig{Plan: testPlan(1, 10), Store: st, Now: clock.now, LeaseTTL: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		u := UnitID{day(10), 0}
		g1, _ := c.Lease(context.Background(), "w1")
		clock.advance(2 * time.Second) // expire w1
		g2, _ := c.Lease(context.Background(), "w2")
		if g2.Status != GrantRun {
			t.Fatalf("re-lease: %+v", g2)
		}
		metaA := flush(t, st, u, "w1", makeSnap(u.Day, "a.com"))
		metaB := flush(t, st, u, "w2", makeSnap(u.Day, "b.com"))
		want := metaA
		if shardLess(metaB, metaA) {
			want = metaB
		}
		first, second := g2, g1
		firstMeta, secondMeta := metaB, metaA
		firstW, secondW := "w2", "w1"
		if swap {
			first, second = g1, g2
			firstMeta, secondMeta = metaA, metaB
			firstW, secondW = "w1", "w2"
		}
		complete(t, c, first.LeaseID, firstW, u, firstMeta, CompleteAccepted)
		complete(t, c, second.LeaseID, secondW, u, secondMeta, CompleteDivergent)
		if got := c.units[u].meta.CRC; got != want.CRC {
			t.Fatalf("swap=%v: winner crc %08x, want %08x", swap, got, want.CRC)
		}
		c.Close()
	}
}

func TestCoordinatorRejectsUnverifiableShard(t *testing.T) {
	st := openStore(t)
	c, err := NewCoordinator(CoordinatorConfig{Plan: testPlan(1, 10), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	u := UnitID{day(10), 0}
	g, _ := c.Lease(context.Background(), "w1")
	meta := flush(t, st, u, "w1", makeSnap(u.Day, "a.com"))
	meta.CRC ^= 1 // claim bytes that are not on disk
	rep, err := c.Complete(context.Background(), &CompleteRequest{
		LeaseID: g.LeaseID, Worker: "w1", Unit: u, Fingerprint: c.cfg.Plan.Fingerprint, Meta: meta,
	})
	if err != nil || rep.Status != CompleteRejected {
		t.Fatalf("bad shard: %+v, %v", rep, err)
	}
	// The unit must be grantable again.
	g2, _ := c.Lease(context.Background(), "w2")
	if g2.Status != GrantRun || g2.Unit != u {
		t.Fatalf("rejected unit not re-leased: %+v", g2)
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCoordinatorRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := testPlan(2, 10, 11)
	c1, err := NewCoordinator(CoordinatorConfig{Plan: plan, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Complete the first unit, lease (but never finish) the second.
	g1, _ := c1.Lease(ctx, "w1")
	complete(t, c1, g1.LeaseID, "w1", g1.Unit, flush(t, st, g1.Unit, "w1", makeSnap(g1.Unit.Day, "a.com")), CompleteAccepted)
	if _, err := c1.Lease(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil { // coordinator dies; state stays
		t.Fatal(err)
	}

	// Restart with a clock one minute ahead, so the dead run's restored
	// in-flight lease is immediately expired and its unit re-leasable.
	c2, err := NewCoordinator(CoordinatorConfig{Plan: plan, Store: st,
		Now: func() time.Time { return time.Now().Add(time.Minute) }})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if s := c2.Stats(); s.Recovered != 1 || s.Done != 1 {
		t.Fatalf("restored stats: %+v", s)
	}
	seen := map[UnitID]bool{g1.Unit: true}
	for i := 0; i < plan.Units()-1; i++ {
		g, err := c2.Lease(ctx, "w2")
		if err != nil {
			t.Fatal(err)
		}
		if g.Status != GrantRun {
			t.Fatalf("lease %d after restart: %+v", i, g)
		}
		if seen[g.Unit] {
			t.Fatalf("unit %s granted twice", g.Unit)
		}
		seen[g.Unit] = true
		complete(t, c2, g.LeaseID, "w2", g.Unit, flush(t, st, g.Unit, "w2", makeSnap(g.Unit.Day, "z.com")), CompleteAccepted)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("plan not done after draining all units")
	}
	if _, err := c2.Merge(); err != nil {
		t.Fatal(err)
	}

	// Health survives the restart.
	byDay, _ := c2.Health()
	if byDay[g1.Unit.Day] == nil || byDay[g1.Unit.Day].Measured == 0 {
		t.Fatalf("health lost across restart: %+v", byDay)
	}
}

func TestCoordinatorRefusesForeignState(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := testPlan(1, 10)
	c1, err := NewCoordinator(CoordinatorConfig{Plan: plan, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c1.Lease(context.Background(), "w1")
	_ = g
	c1.Close()

	other := plan
	other.Fingerprint = "different-plan"
	if _, err := NewCoordinator(CoordinatorConfig{Plan: other, Store: st}); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign state accepted: %v", err)
	}

	resharded := testPlan(3, 10)
	if _, err := NewCoordinator(CoordinatorConfig{Plan: resharded, Store: st}); err == nil ||
		!strings.Contains(err.Error(), "shards") {
		t.Fatalf("resharded state accepted: %v", err)
	}
}

func TestCoordinatorLockRefusesSecondInstance(t *testing.T) {
	st := openStore(t)
	plan := testPlan(1, 10)
	c1, err := NewCoordinator(CoordinatorConfig{Plan: plan, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := NewCoordinator(CoordinatorConfig{Plan: plan, Store: st}); err == nil ||
		!strings.Contains(err.Error(), "locked") {
		t.Fatalf("second live coordinator accepted: %v", err)
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		plan Plan
		want string
	}{
		{Plan{Days: []simtime.Day{1}, Shards: 1}, "fingerprint"},
		{Plan{Fingerprint: "f", Shards: 1}, "no days"},
		{Plan{Fingerprint: "f", Days: []simtime.Day{1}, Shards: 0}, "shard"},
		{Plan{Fingerprint: "f", Days: []simtime.Day{1, 1}, Shards: 1}, "twice"},
	}
	for _, tc := range cases {
		if err := tc.plan.validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("plan %+v: err %v, want %q", tc.plan, err, tc.want)
		}
	}
}
