package dsweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// persistedUnit is one completed unit in the coordinator state file.
type persistedUnit struct {
	Unit   UnitID            `json:"unit"`
	Worker string            `json:"worker"`
	Meta   *checkpoint.Shard `json:"meta"`
}

// persistedLease is one outstanding lease in the coordinator state file.
// Expiry is persisted as absolute wall-clock time: after a coordinator
// restart the lease either still has budget or is immediately expired and
// re-leased — both are safe, since completions settle by checksum.
type persistedLease struct {
	ID      string    `json:"id"`
	Unit    UnitID    `json:"unit"`
	Worker  string    `json:"worker"`
	Expires time.Time `json:"expires"`
}

// coordState is the coordinator's durable state file layout.
type coordState struct {
	// Fingerprint and Shards guard against restoring state into a
	// different sweep configuration.
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	// Seq continues the lease ID sequence across restarts so re-granted
	// leases never reuse an ID a straggler may still report under.
	Seq       int              `json:"seq"`
	Stats     Stats            `json:"stats"`
	Completed []persistedUnit  `json:"completed"`
	Leases    []persistedLease `json:"leases"`

	HealthByDay    map[simtime.Day]*scan.SweepHealth `json:"health_by_day,omitempty"`
	HealthByWorker map[string]*scan.SweepHealth      `json:"health_by_worker,omitempty"`
}

// saveLocked atomically persists the coordinator's state. Called with c.mu
// held, after every mutation — a coordinator killed between two calls
// restarts at the previous consistent state, never a torn one.
func (c *Coordinator) saveLocked() error {
	st := coordState{
		Fingerprint:    c.cfg.Plan.Fingerprint,
		Shards:         c.cfg.Plan.Shards,
		Seq:            c.seq,
		Stats:          c.stats,
		HealthByDay:    c.healthDay,
		HealthByWorker: c.healthWkr,
	}
	for _, id := range c.order {
		if u := c.units[id]; u.meta != nil {
			st.Completed = append(st.Completed, persistedUnit{Unit: id, Worker: u.worker, Meta: u.meta})
		}
	}
	for _, l := range c.leases {
		st.Leases = append(st.Leases, persistedLease{ID: l.id, Unit: l.unit, Worker: l.worker, Expires: l.expires})
	}
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return fmt.Errorf("dsweep: encoding coordinator state: %w", err)
	}
	return dataset.WriteFileAtomic(filepath.Join(c.cfg.Store.Dir(), coordStateFile), append(data, '\n'))
}

// restore loads persisted coordinator state, if any. Completed units are
// adopted (counted in Stats.Recovered), outstanding leases resume with
// their original absolute deadlines. State written under a different
// fingerprint or shard count is refused: mixing two sweeps' lease tables
// would fabricate data.
func (c *Coordinator) restore() error {
	data, err := os.ReadFile(filepath.Join(c.cfg.Store.Dir(), coordStateFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dsweep: reading coordinator state: %w", err)
	}
	var st coordState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("dsweep: corrupt coordinator state %s: %w", coordStateFile, err)
	}
	if st.Fingerprint != c.cfg.Plan.Fingerprint {
		return fmt.Errorf("dsweep: coordinator state in %s belongs to a different sweep (fingerprint %q, this run %q)",
			c.cfg.Store.Dir(), st.Fingerprint, c.cfg.Plan.Fingerprint)
	}
	if st.Shards != c.cfg.Plan.Shards {
		return fmt.Errorf("dsweep: coordinator state has %d shards per day, this run wants %d", st.Shards, c.cfg.Plan.Shards)
	}
	c.seq = st.Seq
	c.stats = st.Stats
	c.stats.Units = c.cfg.Plan.Units()
	c.stats.Recovered = 0 // recount: "restored at this startup", not cumulative
	for _, pu := range st.Completed {
		u := c.units[pu.Unit]
		if u == nil {
			return fmt.Errorf("dsweep: coordinator state completes unit %s, which is not in this plan", pu.Unit)
		}
		if pu.Meta == nil {
			return fmt.Errorf("dsweep: coordinator state completes unit %s without shard metadata", pu.Unit)
		}
		u.meta, u.worker = pu.Meta, pu.Worker
		c.stats.Recovered++
	}
	for _, pl := range st.Leases {
		u := c.units[pl.Unit]
		if u == nil || u.meta != nil || u.lease != nil {
			continue // lease for a unit that is gone, done, or double-listed
		}
		l := &lease{id: pl.ID, unit: pl.Unit, worker: pl.Worker, expires: pl.Expires}
		u.lease = l
		c.leases[l.id] = l
	}
	if st.HealthByDay != nil {
		c.healthDay = st.HealthByDay
	}
	if st.HealthByWorker != nil {
		c.healthWkr = st.HealthByWorker
	}
	c.event("coordinator: restored state (%d/%d units complete, %d leases outstanding)",
		c.doneCountLocked(), len(c.order), len(c.leases))
	return nil
}
