package zone

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
)

// Signer signs a zone with the conventional KSK/ZSK split: the KSK signs the
// DNSKEY RRset (and is what the parent's DS digests), the ZSK signs
// everything else.
type Signer struct {
	KSK *dnssec.KeyPair
	ZSK *dnssec.KeyPair
	// Inception and Expiration bound the RRSIG validity windows.
	Inception  time.Time
	Expiration time.Time
	// AddNSEC builds an NSEC chain for authenticated denial of existence.
	AddNSEC bool
	// NSEC3 switches denial to hashed NSEC3 chains with these parameters
	// (RFC 5155); takes precedence over AddNSEC. Zero iterations and an
	// empty salt are valid (and recommended by modern guidance).
	NSEC3 *dnswire.NSEC3PARAM
	// KeyTTL is the DNSKEY RRset TTL (default 3600).
	KeyTTL uint32
}

// NewSigner generates a fresh KSK/ZSK pair for the given algorithm with a
// validity window around now.
func NewSigner(alg dnswire.Algorithm, now time.Time) (*Signer, error) {
	ksk, err := dnssec.GenerateKeyPair(alg, dnswire.FlagsKSK, nil)
	if err != nil {
		return nil, err
	}
	zsk, err := dnssec.GenerateKeyPair(alg, dnswire.FlagsZSK, nil)
	if err != nil {
		return nil, err
	}
	return &Signer{
		KSK:        ksk,
		ZSK:        zsk,
		Inception:  now.Add(-time.Hour),
		Expiration: now.Add(30 * 24 * time.Hour),
	}, nil
}

// opts returns the sign options for this signer.
func (s *Signer) opts() dnssec.SignOptions {
	return dnssec.SignOptions{Inception: s.Inception, Expiration: s.Expiration}
}

// Sign (re-)signs the zone in place: it strips existing DNSSEC material,
// installs the DNSKEY RRset, optionally builds the NSEC chain, and produces
// RRSIGs for every authoritative RRset. Delegation NS RRsets and glue below
// cuts are left unsigned, DS RRsets at cuts are signed, per RFC 4035
// section 2.2.
func (s *Signer) Sign(z *Zone) error {
	if s.KSK == nil || s.ZSK == nil {
		return errors.New("zone: signer requires both KSK and ZSK")
	}
	keyTTL := s.KeyTTL
	if keyTTL == 0 {
		keyTTL = 3600
	}
	z.RemoveType(dnswire.TypeRRSIG)
	z.RemoveType(dnswire.TypeNSEC)
	z.RemoveType(dnswire.TypeNSEC3)
	z.Remove(z.Origin, dnswire.TypeNSEC3PARAM)
	z.Remove(z.Origin, dnswire.TypeDNSKEY)
	z.MustAdd(s.KSK.RR(z.Origin, keyTTL))
	z.MustAdd(s.ZSK.RR(z.Origin, keyTTL))

	switch {
	case s.NSEC3 != nil:
		if err := s.addNSEC3Chain(z); err != nil {
			return err
		}
	case s.AddNSEC:
		if err := s.addNSECChain(z); err != nil {
			return err
		}
	}

	// Collect the signing work first: signing mutates the zone and RRSets
	// iteration must not observe the records it adds.
	type task struct {
		name string
		typ  dnswire.Type
		rrs  []*dnswire.RR
	}
	var tasks []task
	var signErr error
	z.RRSets(func(name string, t dnswire.Type, rrs []*dnswire.RR) {
		if t == dnswire.TypeRRSIG {
			return
		}
		cut, _ := z.DelegationFor(name)
		if cut != "" {
			// At the cut itself only the DS RRset (and NSEC) is
			// authoritative; below the cut everything is glue.
			if name != cut || (t != dnswire.TypeDS && t != dnswire.TypeNSEC) {
				return
			}
		}
		tasks = append(tasks, task{name, t, rrs})
	})
	for _, tk := range tasks {
		key := s.ZSK
		if tk.typ == dnswire.TypeDNSKEY {
			key = s.KSK
		}
		sig, err := dnssec.SignRRSet(tk.rrs, key, z.Origin, s.opts())
		if err != nil {
			signErr = fmt.Errorf("zone %s: signing %s/%v: %w", present(z.Origin), tk.name, tk.typ, err)
			break
		}
		if err := z.Add(sig); err != nil {
			signErr = err
			break
		}
	}
	return signErr
}

// addNSECChain links every authoritative owner name to the next in
// canonical order, closing the loop back to the apex.
func (s *Signer) addNSECChain(z *Zone) error {
	names := z.Names()
	// Only names that are authoritative participate; glue below cuts does
	// not get NSEC records.
	var auth []string
	for _, n := range names {
		cut, _ := z.DelegationFor(n)
		if cut != "" && n != cut {
			continue
		}
		auth = append(auth, n)
	}
	if len(auth) == 0 {
		return errors.New("zone: cannot build NSEC chain for empty zone")
	}
	soa := z.SOA()
	minTTL := z.DefaultTTL
	if soa != nil {
		minTTL = soa.Data.(*dnswire.SOA).Minimum
	}
	for i, n := range auth {
		next := auth[(i+1)%len(auth)]
		var types []dnswire.Type
		for t := range z.LookupAll(n) {
			types = append(types, t)
		}
		types = append(types, dnswire.TypeNSEC, dnswire.TypeRRSIG)
		if err := z.Add(dnswire.NewRR(n, minTTL, &dnswire.NSEC{NextName: next, Types: types})); err != nil {
			return err
		}
	}
	return nil
}

// addNSEC3Chain builds the hashed denial chain (RFC 5155): every
// authoritative owner name is hashed with the configured salt/iterations,
// the hashes are sorted, and one NSEC3 record per name links to the next
// hash in order. The NSEC3PARAM record at the apex advertises the
// parameters to resolvers.
func (s *Signer) addNSEC3Chain(z *Zone) error {
	params := s.NSEC3
	names := z.Names()
	type entry struct {
		hash  []byte
		owner string // original name, for the type bitmap
	}
	var entries []entry
	for _, n := range names {
		cut, _ := z.DelegationFor(n)
		if cut != "" && n != cut {
			continue // glue
		}
		h, err := dnssec.NSEC3Hash(n, params.Salt, params.Iterations)
		if err != nil {
			return err
		}
		entries = append(entries, entry{hash: h, owner: n})
	}
	if len(entries) == 0 {
		return errors.New("zone: cannot build NSEC3 chain for empty zone")
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].hash, entries[j].hash) < 0
	})
	soa := z.SOA()
	minTTL := z.DefaultTTL
	if soa != nil {
		minTTL = soa.Data.(*dnswire.SOA).Minimum
	}
	if err := z.Add(dnswire.NewRR(z.Origin, minTTL, &dnswire.NSEC3PARAM{
		HashAlg: params.HashAlg, Flags: 0, Iterations: params.Iterations,
		Salt: append([]byte(nil), params.Salt...),
	})); err != nil {
		return err
	}
	for i, e := range entries {
		next := entries[(i+1)%len(entries)]
		var types []dnswire.Type
		for t := range z.LookupAll(e.owner) {
			types = append(types, t)
		}
		types = append(types, dnswire.TypeRRSIG)
		ownerName := dnswire.Base32HexEncode(e.hash)
		if z.Origin != "" {
			ownerName += "." + z.Origin
		}
		if err := z.Add(dnswire.NewRR(ownerName, minTTL, &dnswire.NSEC3{
			HashAlg:    params.HashAlg,
			Flags:      params.Flags,
			Iterations: params.Iterations,
			Salt:       append([]byte(nil), params.Salt...),
			NextHashed: next.hash,
			Types:      types,
		})); err != nil {
			return err
		}
	}
	return nil
}

// DSRecords computes the DS set a parent should publish for this signer's
// KSK.
func (s *Signer) DSRecords(zoneName string, dt dnswire.DigestType) ([]*dnswire.DS, error) {
	ds, err := dnssec.ComputeDS(zoneName, s.KSK.DNSKEY(), dt)
	if err != nil {
		return nil, err
	}
	return []*dnswire.DS{ds}, nil
}

// SignSet signs (or re-signs) a single RRset in place, replacing any
// existing RRSIGs covering it. Registries use this to maintain DS RRsets
// incrementally as registrars upload records, instead of re-signing the
// whole multi-million-entry TLD zone.
func (s *Signer) SignSet(z *Zone, name string, t dnswire.Type) error {
	z.RemoveSigs(name, t)
	rrs := z.Lookup(name, t)
	if len(rrs) == 0 {
		return nil
	}
	key := s.ZSK
	if t == dnswire.TypeDNSKEY {
		key = s.KSK
	}
	sig, err := dnssec.SignRRSet(rrs, key, z.Origin, s.opts())
	if err != nil {
		return err
	}
	return z.Add(sig)
}

// Unsign strips all DNSSEC material from the zone (what a registrar does
// when a customer disables DNSSEC — the paper notes the DS must be removed
// from the parent first or the zone goes bogus).
func Unsign(z *Zone) {
	z.RemoveType(dnswire.TypeRRSIG)
	z.RemoveType(dnswire.TypeNSEC)
	z.RemoveType(dnswire.TypeNSEC3)
	z.Remove(z.Origin, dnswire.TypeNSEC3PARAM)
	z.Remove(z.Origin, dnswire.TypeDNSKEY)
	z.Remove(z.Origin, dnswire.TypeCDS)
	z.Remove(z.Origin, dnswire.TypeCDNSKEY)
}

// PublishCDS installs CDS and CDNSKEY records for the signer's KSK at the
// apex and signs them, signalling the parent to update its DS RRset
// (RFC 7344).
func (s *Signer) PublishCDS(z *Zone, dt dnswire.DigestType) error {
	ds, err := dnssec.ComputeDS(z.Origin, s.KSK.DNSKEY(), dt)
	if err != nil {
		return err
	}
	z.Remove(z.Origin, dnswire.TypeCDS)
	z.Remove(z.Origin, dnswire.TypeCDNSKEY)
	cds := dnswire.NewRR(z.Origin, 3600, &dnswire.CDS{DS: *ds})
	cdnskey := dnswire.NewRR(z.Origin, 3600, &dnswire.CDNSKEY{DNSKEY: *s.KSK.DNSKEY()})
	for _, rr := range []*dnswire.RR{cds, cdnskey} {
		if err := z.Add(rr); err != nil {
			return err
		}
		sig, err := dnssec.SignRRSet([]*dnswire.RR{rr}, s.KSK, z.Origin, s.opts())
		if err != nil {
			return err
		}
		if err := z.Add(sig); err != nil {
			return err
		}
	}
	return nil
}
