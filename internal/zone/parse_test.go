package zone

import (
	"bytes"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/dnswire"
)

const sampleZoneFile = `
$ORIGIN example.com.
$TTL 3600
@   IN  SOA ns1 hostmaster (
        2016123101 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
    IN  NS  ns1
    IN  NS  ns2.example.net.
ns1     A     192.0.2.1
www 600 IN A  192.0.2.80
www     AAAA  2001:db8::80
mail    MX    10 mx1
txt     TXT   "hello world" "second string"
alias   CNAME www
sub     NS    ns1.sub
ns1.sub A     192.0.2.53
`

func TestParseZoneFile(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZoneFile), "example.com")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if z.Origin != "example.com" {
		t.Errorf("origin %q", z.Origin)
	}
	soa := z.SOA()
	if soa == nil {
		t.Fatal("SOA not parsed")
	}
	s := soa.Data.(*dnswire.SOA)
	if s.Serial != 2016123101 || s.Minimum != 300 || s.MName != "ns1.example.com" {
		t.Errorf("SOA fields: %+v", s)
	}
	ns := z.Lookup("example.com", dnswire.TypeNS)
	if len(ns) != 2 {
		t.Fatalf("NS count %d", len(ns))
	}
	// Relative vs absolute names.
	hosts := map[string]bool{}
	for _, rr := range ns {
		hosts[rr.Data.(*dnswire.NS).Host] = true
	}
	if !hosts["ns1.example.com"] || !hosts["ns2.example.net"] {
		t.Errorf("NS hosts: %v", hosts)
	}
	// Explicit TTL.
	www := z.Lookup("www.example.com", dnswire.TypeA)
	if len(www) != 1 || www[0].TTL != 600 {
		t.Errorf("www A: %v", www)
	}
	// Default TTL applies.
	if rr := z.Lookup("ns1.example.com", dnswire.TypeA); len(rr) != 1 || rr[0].TTL != 3600 {
		t.Errorf("ns1 A TTL: %v", rr)
	}
	txt := z.Lookup("txt.example.com", dnswire.TypeTXT)
	if len(txt) != 1 {
		t.Fatal("TXT missing")
	}
	got := txt[0].Data.(*dnswire.TXT).Strings
	if len(got) != 2 || got[0] != "hello world" || got[1] != "second string" {
		t.Errorf("TXT strings: %q", got)
	}
	if cn := z.Lookup("alias.example.com", dnswire.TypeCNAME); len(cn) != 1 ||
		cn[0].Data.(*dnswire.CNAME).Target != "www.example.com" {
		t.Error("CNAME not parsed")
	}
	if mx := z.Lookup("mail.example.com", dnswire.TypeMX); len(mx) != 1 ||
		mx[0].Data.(*dnswire.MX).Pref != 10 {
		t.Error("MX not parsed")
	}
}

func TestParseSerializeRoundTrip(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZoneFile), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	// Sign it so the round trip covers DNSSEC presentation formats too.
	s := newTestSigner(t)
	s.AddNSEC = true
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishCDS(z, dnswire.DigestSHA256); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatalf("reparse: %v\nzone file:\n%s", err, buf.String())
	}
	if z2.Origin != z.Origin {
		t.Errorf("origin %q vs %q", z2.Origin, z.Origin)
	}
	if z2.Len() != z.Len() {
		t.Errorf("record count %d vs %d", z2.Len(), z.Len())
	}
	// Deterministic output: serializing again must be byte-identical.
	var buf2 bytes.Buffer
	if _, err := z2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("serialization is not deterministic across a parse round trip")
	}
}

func TestParseTTLUnits(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"300", 300}, {"1h", 3600}, {"1h30m", 5400}, {"2d", 172800}, {"1w", 604800},
	}
	for _, c := range cases {
		got, err := parseTTL(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "h", "5x", "12h7"} {
		if _, err := parseTTL(bad); err == nil {
			t.Errorf("parseTTL(%q) accepted", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, body string }{
		{"unknown type", "@ IN WTF data\n"},
		{"bad A", "@ IN A not-an-ip\n"},
		{"bad AAAA", "@ IN AAAA 192.0.2.1\n"},
		{"unbalanced paren", "@ IN SOA a b ( 1 2 3 4 5\n"},
		{"stray close paren", "@ IN A ) 192.0.2.1\n"},
		{"unterminated quote", "@ IN TXT \"oops\n"},
		{"missing rdata", "@ IN MX 10\n"},
		{"bad DS hex", "@ IN DS 1 8 2 zz\n"},
		{"bad DNSKEY b64", "@ IN DNSKEY 256 3 8 !!!\n"},
		{"orphan origin", "$ORIGIN\n"},
		{"bad ttl directive", "$TTL abc\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.body), "example.com"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseCommentInsideQuotes(t *testing.T) {
	z, err := Parse(strings.NewReader("t IN TXT \"a;b\" ; real comment\n"), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	txt := z.Lookup("t.example.com", dnswire.TypeTXT)
	if len(txt) != 1 || txt[0].Data.(*dnswire.TXT).Strings[0] != "a;b" {
		t.Errorf("quoted semicolon mangled: %v", txt)
	}
}

func TestParseGenericRFC3597(t *testing.T) {
	z, err := Parse(strings.NewReader("g IN TYPE999 \\# 3 010203\n"), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	rr := z.Lookup("g.example.com", dnswire.Type(999))
	if len(rr) != 1 {
		t.Fatal("generic record missing")
	}
	g := rr[0].Data.(*dnswire.Generic)
	if len(g.Data) != 3 || g.Data[0] != 1 {
		t.Errorf("generic data: %v", g.Data)
	}
}
