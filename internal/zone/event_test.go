package zone

import (
	"net/netip"
	"testing"

	"securepki.org/registrarsec/internal/dnswire"
)

// recordEvents subscribes and returns the accumulated event log.
func recordEvents(z *Zone) *[]Event {
	var log []Event
	z.OnEvent(func(ev Event) { log = append(log, ev) })
	return &log
}

func lastEvent(t *testing.T, log *[]Event) Event {
	t.Helper()
	if len(*log) == 0 {
		t.Fatal("no event emitted")
	}
	return (*log)[len(*log)-1]
}

func TestEventScopes(t *testing.T) {
	z := New("example.com")
	a(t, z, "www.example.com", "192.0.2.1")
	log := recordEvents(z)

	// Plain data mutation below the apex: name-scoped.
	a(t, z, "mail.example.com", "192.0.2.2")
	if ev := lastEvent(t, log); ev.Scope != ScopeName || ev.Name != "mail.example.com" {
		t.Errorf("add below apex: %+v", ev)
	}

	// Apex mutation: apex-scoped.
	if err := z.Add(dnswire.NewRR("example.com", 300, &dnswire.TXT{Strings: []string{"v=1"}})); err != nil {
		t.Fatal(err)
	}
	if ev := lastEvent(t, log); ev.Scope != ScopeApex {
		t.Errorf("apex add: %+v", ev)
	}

	// Remove of an existing set: name-scoped; of a missing set: no event.
	n := len(*log)
	z.Remove("mail.example.com", dnswire.TypeA)
	if ev := lastEvent(t, log); ev.Scope != ScopeName || ev.Name != "mail.example.com" {
		t.Errorf("remove: %+v", ev)
	}
	z.Remove("mail.example.com", dnswire.TypeA)
	if len(*log) != n+1 {
		t.Errorf("no-op remove emitted an event")
	}

	// RemoveType is always zone-wide.
	z.RemoveType(dnswire.TypeTXT)
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("RemoveType: %+v", ev)
	}
}

func TestBumpSerialIsApexScoped(t *testing.T) {
	z := New("example.com")
	z.MustAdd(dnswire.NewRR("example.com", 3600, &dnswire.SOA{
		MName: "ns1.example.com", RName: "hostmaster.example.com",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	log := recordEvents(z)
	z.BumpSerial()
	ev := lastEvent(t, log)
	if ev.Scope != ScopeApex {
		t.Errorf("BumpSerial: %+v", ev)
	}
}

func TestNSECEscalation(t *testing.T) {
	z := New("example.com")
	a(t, z, "www.example.com", "192.0.2.1")
	log := recordEvents(z)

	// Adding an NSEC RRset is itself zone-wide.
	if err := z.Add(dnswire.NewRR("example.com", 300, &dnswire.NSEC{
		NextName: "www.example.com", Types: []dnswire.Type{dnswire.TypeA},
	})); err != nil {
		t.Fatal(err)
	}
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("NSEC add: %+v", ev)
	}

	// While the chain exists, creating a brand-new owner name is zone-wide
	// (the covering spans change) ...
	a(t, z, "new.example.com", "192.0.2.3")
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("structural add with NSEC chain: %+v", ev)
	}
	// ... but adding a second type to an existing owner is not structural.
	if err := z.Add(dnswire.NewRR("new.example.com", 300, &dnswire.TXT{Strings: []string{"x"}})); err != nil {
		t.Fatal(err)
	}
	if ev := lastEvent(t, log); ev.Scope != ScopeName {
		t.Errorf("non-structural add with NSEC chain: %+v", ev)
	}
	// Destroying an owner name entirely is structural again.
	z.RemoveName("new.example.com")
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("RemoveName with NSEC chain: %+v", ev)
	}

	// An RRSIG covering NSEC escalates; an RRSIG covering A at a non-apex
	// owner does not.
	sig := &dnswire.RRSIG{TypeCovered: dnswire.TypeNSEC, Algorithm: dnswire.AlgED25519, SignerName: "example.com"}
	if err := z.Add(dnswire.NewRR("example.com", 300, sig)); err != nil {
		t.Fatal(err)
	}
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("RRSIG(NSEC) add: %+v", ev)
	}
	z.RemoveSigs("example.com", dnswire.TypeNSEC)
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("RemoveSigs(NSEC): %+v", ev)
	}
}

func TestCNAMEEscalation(t *testing.T) {
	z := New("example.com")
	a(t, z, "target.example.com", "192.0.2.1")
	log := recordEvents(z)
	if err := z.Add(dnswire.NewRR("alias.example.com", 300, &dnswire.CNAME{Target: "target.example.com"})); err != nil {
		t.Fatal(err)
	}
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("CNAME add: %+v", ev)
	}
	// Any mutation while a CNAME exists is zone-wide (chased answers embed
	// records from other owners).
	a(t, z, "other.example.com", "192.0.2.2")
	if ev := lastEvent(t, log); ev.Scope != ScopeZone {
		t.Errorf("mutation with CNAME present: %+v", ev)
	}
	// Once the last CNAME is gone, scoping narrows again.
	z.Remove("alias.example.com", dnswire.TypeCNAME)
	a(t, z, "third.example.com", "192.0.2.3")
	if ev := lastEvent(t, log); ev.Scope != ScopeName {
		t.Errorf("mutation after CNAME removal: %+v", ev)
	}
}

func TestGenerationSeqlock(t *testing.T) {
	z := New("example.com")
	if g := z.Generation(); g != 0 {
		t.Fatalf("fresh zone generation %d", g)
	}
	// Every committed mutation leaves the counter even and advanced.
	before := z.Generation()
	a(t, z, "www.example.com", "192.0.2.1")
	after := z.Generation()
	if after%2 != 0 || after <= before {
		t.Errorf("generation %d -> %d", before, after)
	}
	// Callbacks run after commit: the generation observed inside must be
	// even and equal to the final value.
	var seen uint64
	z.OnEvent(func(Event) { seen = z.Generation() })
	a(t, z, "mail.example.com", "192.0.2.2")
	if seen%2 != 0 || seen != z.Generation() {
		t.Errorf("generation inside callback: %d (final %d)", seen, z.Generation())
	}
	// No-op mutations (duplicate add, missing remove) do not move it.
	g := z.Generation()
	a(t, z, "mail.example.com", "192.0.2.2")
	z.Remove("absent.example.com", dnswire.TypeA)
	z.RemoveSigs("absent.example.com", dnswire.TypeA)
	if z.Generation() != g {
		t.Errorf("no-op mutation moved generation %d -> %d", g, z.Generation())
	}
}

func TestCloneDropsSubscribers(t *testing.T) {
	z := New("example.com")
	a(t, z, "www.example.com", "192.0.2.1")
	log := recordEvents(z)
	c := z.Clone()
	n := len(*log)
	a(t, c, "clone-only.example.com", "192.0.2.9")
	if len(*log) != n {
		t.Error("clone mutation notified the original's subscriber")
	}
	// The clone still tracks escalation state: it knows about CNAMEs added
	// before the clone.
	z2 := New("example.com")
	z2.MustAdd(dnswire.NewRR("alias.example.com", 300, &dnswire.CNAME{Target: "t.example.com"}))
	c2 := z2.Clone()
	log2 := recordEvents(c2)
	if err := c2.Add(dnswire.NewRR("x.example.com", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.4")})); err != nil {
		t.Fatal(err)
	}
	if ev := lastEvent(t, log2); ev.Scope != ScopeZone {
		t.Errorf("clone lost cname escalation state: %+v", ev)
	}
}
