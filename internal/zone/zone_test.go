package zone

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
)

var testNow = time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

func a(t *testing.T, z *Zone, name string, ip string) {
	t.Helper()
	if err := z.Add(dnswire.NewRR(name, 300, &dnswire.A{Addr: netip.MustParseAddr(ip)})); err != nil {
		t.Fatal(err)
	}
}

func buildExampleZone(t *testing.T) *Zone {
	t.Helper()
	z := New("example.com")
	z.MustAdd(dnswire.NewRR("example.com", 3600, &dnswire.SOA{
		MName: "ns1.example.com", RName: "hostmaster.example.com",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR("example.com", 3600, &dnswire.NS{Host: "ns1.example.com"}))
	z.MustAdd(dnswire.NewRR("example.com", 3600, &dnswire.NS{Host: "ns2.example.com"}))
	a(t, z, "ns1.example.com", "192.0.2.1")
	a(t, z, "ns2.example.com", "192.0.2.2")
	a(t, z, "www.example.com", "192.0.2.80")
	// A delegation with glue.
	z.MustAdd(dnswire.NewRR("sub.example.com", 3600, &dnswire.NS{Host: "ns1.sub.example.com"}))
	a(t, z, "ns1.sub.example.com", "192.0.2.53")
	return z
}

func TestZoneBasics(t *testing.T) {
	z := buildExampleZone(t)
	if z.SOA() == nil {
		t.Fatal("SOA missing")
	}
	if got := z.Lookup("www.example.com", dnswire.TypeA); len(got) != 1 {
		t.Errorf("Lookup www A: %d records", len(got))
	}
	if got := z.Lookup("WWW.EXAMPLE.COM", dnswire.TypeA); len(got) != 1 {
		t.Error("Lookup must canonicalize the name")
	}
	if got := z.Lookup("nope.example.com", dnswire.TypeA); got != nil {
		t.Error("Lookup of absent name returned records")
	}
	if !z.HasName("ns1.example.com") || z.HasName("ghost.example.com") {
		t.Error("HasName wrong")
	}
	all := z.LookupAll("example.com")
	if len(all[dnswire.TypeNS]) != 2 || len(all[dnswire.TypeSOA]) != 1 {
		t.Errorf("LookupAll: %v", all)
	}
	// Duplicates collapse.
	before := z.Len()
	a(t, z, "www.example.com", "192.0.2.80")
	if z.Len() != before {
		t.Error("duplicate record not collapsed")
	}
	// Out-of-bailiwick records rejected.
	err := z.Add(dnswire.NewRR("other.org", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.9")}))
	if err == nil {
		t.Error("out-of-bailiwick record accepted")
	}
}

func TestZoneRemove(t *testing.T) {
	z := buildExampleZone(t)
	z.Remove("www.example.com", dnswire.TypeA)
	if z.Lookup("www.example.com", dnswire.TypeA) != nil {
		t.Error("Remove left records")
	}
	z.RemoveName("ns1.example.com")
	if z.HasName("ns1.example.com") {
		t.Error("RemoveName left records")
	}
}

func TestDelegation(t *testing.T) {
	z := buildExampleZone(t)
	cut, ns := z.DelegationFor("deep.host.sub.example.com")
	if cut != "sub.example.com" || len(ns) != 1 {
		t.Errorf("DelegationFor = %q, %d NS", cut, len(ns))
	}
	if cut, _ := z.DelegationFor("www.example.com"); cut != "" {
		t.Errorf("www should not be delegated, got cut %q", cut)
	}
	// The apex NS RRset is not a delegation.
	if cut, _ := z.DelegationFor("example.com"); cut != "" {
		t.Errorf("apex reported as delegation: %q", cut)
	}
	if !z.IsDelegated("sub.example.com") || z.IsDelegated("www.example.com") {
		t.Error("IsDelegated wrong")
	}
}

func TestBumpSerial(t *testing.T) {
	z := buildExampleZone(t)
	before := z.SOA().Data.(*dnswire.SOA).Serial
	z.BumpSerial()
	if got := z.SOA().Data.(*dnswire.SOA).Serial; got != before+1 {
		t.Errorf("serial %d, want %d", got, before+1)
	}
}

func TestNamesCanonicalOrder(t *testing.T) {
	z := buildExampleZone(t)
	names := z.Names()
	for i := 1; i < len(names); i++ {
		if dnswire.CompareCanonical(names[i-1], names[i]) >= 0 {
			t.Errorf("names out of order: %q >= %q", names[i-1], names[i])
		}
	}
	if names[0] != "example.com" {
		t.Errorf("apex should sort first, got %q", names[0])
	}
}

func newTestSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner(dnswire.AlgED25519, testNow)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSignZone(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	s.AddNSEC = true
	if err := s.Sign(z); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	keys := z.Lookup("example.com", dnswire.TypeDNSKEY)
	if len(keys) != 2 {
		t.Fatalf("DNSKEY count = %d", len(keys))
	}
	// Every authoritative RRset must have a verifying RRSIG.
	dnskeys := []*dnswire.DNSKEY{
		keys[0].Data.(*dnswire.DNSKEY), keys[1].Data.(*dnswire.DNSKEY),
	}
	checked := 0
	z.RRSets(func(name string, typ dnswire.Type, rrs []*dnswire.RR) {
		if typ == dnswire.TypeRRSIG {
			return
		}
		cut, _ := z.DelegationFor(name)
		isAuth := cut == "" || (name == cut && (typ == dnswire.TypeDS || typ == dnswire.TypeNSEC))
		sigs := sigsFor(z, name, typ)
		if !isAuth {
			if len(sigs) != 0 {
				t.Errorf("%s/%v: glue/delegation signed", name, typ)
			}
			return
		}
		if len(sigs) == 0 {
			t.Errorf("%s/%v: no RRSIG", name, typ)
			return
		}
		ok := false
		for _, sig := range sigs {
			if dnssec.VerifyWithAnyKey(rrs, sig, dnskeys, testNow) == nil {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s/%v: RRSIG does not verify", name, typ)
		}
		checked++
	})
	if checked < 5 {
		t.Errorf("only %d RRsets verified", checked)
	}
	// The DNSKEY RRset must be signed by the KSK specifically.
	keySigs := sigsFor(z, "example.com", dnswire.TypeDNSKEY)
	foundKSK := false
	for _, sig := range keySigs {
		if sig.KeyTag == s.KSK.KeyTag() {
			foundKSK = true
		}
	}
	if !foundKSK {
		t.Error("DNSKEY RRset not signed by the KSK")
	}
	// NSEC chain: every authoritative name has an NSEC, and the chain loops.
	nsecs := 0
	z.RRSets(func(name string, typ dnswire.Type, rrs []*dnswire.RR) {
		if typ == dnswire.TypeNSEC {
			nsecs++
		}
	})
	if nsecs == 0 {
		t.Error("no NSEC records after signing with AddNSEC")
	}
}

func sigsFor(z *Zone, name string, covered dnswire.Type) []*dnswire.RRSIG {
	var out []*dnswire.RRSIG
	for _, rr := range z.Lookup(name, dnswire.TypeRRSIG) {
		sig := rr.Data.(*dnswire.RRSIG)
		if sig.TypeCovered == covered {
			out = append(out, sig)
		}
	}
	return out
}

func TestResignIsIdempotent(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	n1 := z.Len()
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	if z.Len() != n1 {
		t.Errorf("re-sign changed record count: %d -> %d", n1, z.Len())
	}
}

func TestUnsign(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishCDS(z, dnswire.DigestSHA256); err != nil {
		t.Fatal(err)
	}
	Unsign(z)
	for _, typ := range []dnswire.Type{
		dnswire.TypeDNSKEY, dnswire.TypeRRSIG, dnswire.TypeNSEC,
		dnswire.TypeCDS, dnswire.TypeCDNSKEY,
	} {
		found := false
		z.RRSets(func(_ string, t2 dnswire.Type, _ []*dnswire.RR) {
			if t2 == typ {
				found = true
			}
		})
		if found {
			t.Errorf("Unsign left %v records", typ)
		}
	}
}

func TestPublishCDS(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishCDS(z, dnswire.DigestSHA256); err != nil {
		t.Fatal(err)
	}
	cds := z.Lookup("example.com", dnswire.TypeCDS)
	if len(cds) != 1 {
		t.Fatalf("CDS count = %d", len(cds))
	}
	// The CDS must match the KSK the parent should trust.
	got := cds[0].Data.(*dnswire.CDS)
	if !dnssec.MatchDS("example.com", &got.DS, s.KSK.DNSKEY()) {
		t.Error("published CDS does not match the KSK")
	}
	if len(z.Lookup("example.com", dnswire.TypeCDNSKEY)) != 1 {
		t.Error("CDNSKEY missing")
	}
}

func TestDSRecordsMatchChain(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	dss, err := s.DSRecords("example.com", dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	keys := z.Lookup("example.com", dnswire.TypeDNSKEY)
	var dnskeys []*dnswire.DNSKEY
	for _, rr := range keys {
		dnskeys = append(dnskeys, rr.Data.(*dnswire.DNSKEY))
	}
	if !dnssec.MatchAnyDS("example.com", dss, dnskeys) {
		t.Error("DSRecords do not match the published DNSKEYs")
	}
}

func TestSignerRequiresKeys(t *testing.T) {
	z := buildExampleZone(t)
	s := &Signer{}
	if err := s.Sign(z); err == nil {
		t.Error("Sign without keys succeeded")
	}
}

func TestClone(t *testing.T) {
	z := buildExampleZone(t)
	c := z.Clone()
	c.Remove("www.example.com", dnswire.TypeA)
	if z.Lookup("www.example.com", dnswire.TypeA) == nil {
		t.Error("Clone shares RRset storage with original")
	}
	if c.Origin != z.Origin || c.Len() >= z.Len() {
		t.Errorf("clone: origin %q len %d vs %d", c.Origin, c.Len(), z.Len())
	}
}

func TestSignSetIncremental(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	// Mutate one RRset and re-sign only it.
	z.Remove("www.example.com", dnswire.TypeA)
	a(t, z, "www.example.com", "192.0.2.99")
	if err := s.SignSet(z, "www.example.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	sigs := sigsFor(z, "www.example.com", dnswire.TypeA)
	if len(sigs) != 1 {
		t.Fatalf("sigs after SignSet: %d", len(sigs))
	}
	rrs := z.Lookup("www.example.com", dnswire.TypeA)
	if err := dnssec.VerifyRRSet(rrs, sigs[0], s.ZSK.DNSKEY(), testNow); err != nil {
		t.Errorf("re-signed RRset does not verify: %v", err)
	}
	// SignSet of an absent RRset just clears signatures.
	z.Remove("www.example.com", dnswire.TypeA)
	if err := s.SignSet(z, "www.example.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if len(sigsFor(z, "www.example.com", dnswire.TypeA)) != 0 {
		t.Error("stale signature after removing the RRset")
	}
}

func TestRemoveSigsSelective(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	nsBefore := len(sigsFor(z, "example.com", dnswire.TypeNS))
	soaBefore := len(sigsFor(z, "example.com", dnswire.TypeSOA))
	if nsBefore == 0 || soaBefore == 0 {
		t.Fatal("fixture lacks signatures")
	}
	z.RemoveSigs("example.com", dnswire.TypeNS)
	if len(sigsFor(z, "example.com", dnswire.TypeNS)) != 0 {
		t.Error("NS sigs survived RemoveSigs")
	}
	if len(sigsFor(z, "example.com", dnswire.TypeSOA)) != soaBefore {
		t.Error("RemoveSigs removed unrelated signatures")
	}
}

func TestSignZoneNSEC3(t *testing.T) {
	z := buildExampleZone(t)
	s := newTestSigner(t)
	s.NSEC3 = &dnswire.NSEC3PARAM{HashAlg: dnswire.NSEC3HashSHA1, Iterations: 2, Salt: []byte{0x01, 0x02}}
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	if len(z.Lookup("example.com", dnswire.TypeNSEC3PARAM)) != 1 {
		t.Error("NSEC3PARAM missing at apex")
	}
	// One NSEC3 per authoritative name, all signed, next-hash chain closed.
	var nsec3s []*dnswire.NSEC3
	z.RRSets(func(name string, typ dnswire.Type, rrs []*dnswire.RR) {
		if typ != dnswire.TypeNSEC3 {
			return
		}
		nsec3s = append(nsec3s, rrs[0].Data.(*dnswire.NSEC3))
		if len(sigsFor(z, name, dnswire.TypeNSEC3)) == 0 {
			t.Errorf("NSEC3 at %s unsigned", name)
		}
	})
	// Authoritative names: apex, ns1, ns2, www, sub (cut) = 5; glue
	// ns1.sub is excluded.
	if len(nsec3s) != 5 {
		t.Fatalf("NSEC3 count = %d, want 5", len(nsec3s))
	}
	// The next-hash pointers form a single closed cycle.
	hashes := map[string]bool{}
	for _, n3 := range nsec3s {
		hashes[string(n3.NextHashed)] = true
	}
	if len(hashes) != len(nsec3s) {
		t.Error("NSEC3 chain has duplicate next pointers")
	}
	// Re-signing with plain NSEC removes the NSEC3 material.
	s.NSEC3 = nil
	s.AddNSEC = true
	if err := s.Sign(z); err != nil {
		t.Fatal(err)
	}
	found := false
	z.RRSets(func(_ string, typ dnswire.Type, _ []*dnswire.RR) {
		if typ == dnswire.TypeNSEC3 || typ == dnswire.TypeNSEC3PARAM {
			found = true
		}
	})
	if found {
		t.Error("NSEC3 records survived re-signing with NSEC")
	}
}

func TestParseNSEC3Records(t *testing.T) {
	// Presentation-format parsing of NSEC3/NSEC3PARAM, incl. the "-" salt.
	body := `$ORIGIN example.com.
@ 300 IN NSEC3PARAM 1 0 5 0102
@ 300 IN NSEC3PARAM 1 0 0 -
0p9mhaveqvm6t7vbl5lop2u3t2rp3tom 300 IN NSEC3 1 1 5 0102 2t7b4g4vsa5smi47k61mv5bv1a22bojr A RRSIG
`
	z, err := Parse(strings.NewReader(body), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	params := z.Lookup("example.com", dnswire.TypeNSEC3PARAM)
	if len(params) != 2 {
		t.Fatalf("NSEC3PARAM count %d", len(params))
	}
	n3 := z.Lookup("0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example.com", dnswire.TypeNSEC3)
	if len(n3) != 1 {
		t.Fatal("NSEC3 not parsed")
	}
	rec := n3[0].Data.(*dnswire.NSEC3)
	if !rec.OptOut() || rec.Iterations != 5 || len(rec.NextHashed) != 20 {
		t.Errorf("NSEC3 fields: %+v", rec)
	}
	// And it round-trips through the serializer.
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(bytes.NewReader(buf.Bytes()), ""); err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	// Malformed NSEC3 inputs are rejected.
	for _, bad := range []string{
		"x IN NSEC3 1 0 5\n",         // missing fields
		"x IN NSEC3 1 0 5 zz aabb\n", // bad salt hex
		"x IN NSEC3 1 0 5 - !!!!\n",  // bad base32
		"x IN NSEC3PARAM 1 0\n",      // short
		"x IN NSEC3PARAM 1 0 5 zz\n", // bad salt
	} {
		if _, err := Parse(strings.NewReader(bad), "example.com"); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseRRSIGEpochTime(t *testing.T) {
	// RRSIG timestamps parse both as YYYYMMDDHHmmSS and raw epoch seconds.
	body := "x 300 IN RRSIG A 8 2 300 1483142400 20161130000000 60485 example.com. AAAA\n"
	z, err := Parse(strings.NewReader(body), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	sig := z.Lookup("x.example.com", dnswire.TypeRRSIG)[0].Data.(*dnswire.RRSIG)
	if sig.Expiration != 1483142400 {
		t.Errorf("expiration: %d", sig.Expiration)
	}
	if _, err := Parse(strings.NewReader("x IN RRSIG A 8 2 300 nottime 1 1 e. AA\n"), "example.com"); err == nil {
		t.Error("bad RRSIG time accepted")
	}
}
