// Package zone provides an authoritative zone data model, DNSSEC zone
// signing with a KSK/ZSK split, and a master-file (RFC 1035 section 5)
// parser and serializer.
//
// A Zone holds the RRsets of one DNS zone, understands delegation cuts
// (child NS records plus optional DS and glue), and can answer the lookup
// queries an authoritative server needs: exact RRset match, delegation
// search and existence checks.
package zone

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
)

// rrKey identifies one RRset within a zone.
type rrKey struct {
	name string
	typ  dnswire.Type
}

// Zone is a mutable collection of RRsets rooted at Origin. It is safe for
// concurrent use; the simulation mutates zones (registrars enabling DNSSEC,
// owners switching nameservers) while the scanner reads them. Mutations
// emit invalidation Events (see events.go) so response caches can flush
// exactly the affected names.
type Zone struct {
	// Origin is the canonical apex name of the zone.
	Origin string
	// DefaultTTL is applied by the parser when no TTL is given.
	DefaultTTL uint32

	mu   sync.RWMutex
	sets map[rrKey][]*dnswire.RR
	subs []func(Event)
	// gen is a seqlock-style mutation counter: incremented to odd when a
	// mutation begins, back to even when it commits.
	gen atomic.Uint64
	// nsecSets and cnameSets count RRsets whose presence forces zone-wide
	// invalidation scopes (see eventLocked).
	nsecSets  int
	cnameSets int
}

// New creates an empty zone for the given origin.
func New(origin string) *Zone {
	return &Zone{
		Origin:     dnswire.CanonicalName(origin),
		DefaultTTL: 3600,
		sets:       make(map[rrKey][]*dnswire.RR),
	}
}

// Add inserts a record. Records outside the zone's bailiwick are rejected.
// Exact duplicates (same name, type and RDATA) are silently collapsed.
func (z *Zone) Add(rr *dnswire.RR) error {
	if !dnswire.IsSubdomain(rr.Name, z.Origin) {
		return fmt.Errorf("zone %s: record %s out of bailiwick", present(z.Origin), rr.Name)
	}
	wire, err := rr.CanonicalWire()
	if err != nil {
		return err
	}
	z.mu.Lock()
	k := rrKey{rr.Name, rr.Type}
	for _, have := range z.sets[k] {
		hw, _ := have.CanonicalWire()
		if string(hw) == string(wire) {
			z.mu.Unlock()
			return nil
		}
	}
	structural := false
	if z.needStructural() && len(z.sets[k]) == 0 {
		structural = !z.hasNameLocked(rr.Name)
	}
	z.gen.Add(1)
	z.sets[k] = append(z.sets[k], rr)
	if len(z.sets[k]) == 1 {
		z.trackSetAdded(rr.Type)
	}
	affects := rr.Type
	if sig, ok := rr.Data.(*dnswire.RRSIG); ok {
		affects = sig.TypeCovered
	}
	ev := z.eventLocked(rr.Name, affects, structural)
	z.gen.Add(1)
	subs := z.subs
	z.mu.Unlock()
	notify(subs, ev)
	return nil
}

// MustAdd is Add for construction paths where records are known-valid.
func (z *Zone) MustAdd(rr *dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes the whole RRset at (name, type).
func (z *Zone) Remove(name string, t dnswire.Type) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	k := rrKey{name, t}
	if _, ok := z.sets[k]; !ok {
		z.mu.Unlock()
		return
	}
	z.gen.Add(1)
	delete(z.sets, k)
	z.trackSetRemoved(t)
	structural := false
	if z.needStructural() {
		structural = !z.hasNameLocked(name)
	}
	ev := z.eventLocked(name, t, structural)
	z.gen.Add(1)
	subs := z.subs
	z.mu.Unlock()
	notify(subs, ev)
}

// RemoveName deletes every RRset owned by name.
func (z *Zone) RemoveName(name string) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	z.gen.Add(1)
	removed := false
	for k := range z.sets {
		if k.name == name {
			delete(z.sets, k)
			z.trackSetRemoved(k.typ)
			removed = true
		}
	}
	ev := z.eventLocked(name, 0, removed)
	z.gen.Add(1)
	subs := z.subs
	z.mu.Unlock()
	if removed {
		notify(subs, ev)
	}
}

// RemoveSigs deletes the RRSIGs at name that cover type t, leaving other
// signatures at the same owner untouched.
func (z *Zone) RemoveSigs(name string, t dnswire.Type) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	k := rrKey{name, dnswire.TypeRRSIG}
	set := z.sets[k]
	if len(set) == 0 {
		z.mu.Unlock()
		return
	}
	z.gen.Add(1)
	kept := set[:0]
	for _, rr := range set {
		if sig, ok := rr.Data.(*dnswire.RRSIG); ok && sig.TypeCovered == t {
			continue
		}
		kept = append(kept, rr)
	}
	if len(kept) == 0 {
		delete(z.sets, k)
	} else {
		z.sets[k] = kept
	}
	// The event is classified by the covered type: dropping the signature
	// over an NSEC chain link invalidates denial proofs zone-wide.
	ev := z.eventLocked(name, t, false)
	z.gen.Add(1)
	subs := z.subs
	z.mu.Unlock()
	notify(subs, ev)
}

// RemoveType deletes every RRset of the given type anywhere in the zone
// (used to strip RRSIG/NSEC before re-signing). Always a zone-wide event.
func (z *Zone) RemoveType(t dnswire.Type) {
	z.mu.Lock()
	z.gen.Add(1)
	for k := range z.sets {
		if k.typ == t {
			delete(z.sets, k)
			z.trackSetRemoved(k.typ)
		}
	}
	z.gen.Add(1)
	subs := z.subs
	z.mu.Unlock()
	notify(subs, Event{Scope: ScopeZone})
}

// Lookup returns a copy of the RRset at (name, type), nil if absent.
func (z *Zone) Lookup(name string, t dnswire.Type) []*dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	set := z.sets[rrKey{dnswire.CanonicalName(name), t}]
	if len(set) == 0 {
		return nil
	}
	return append([]*dnswire.RR(nil), set...)
}

// LookupAll returns every RRset owned by name, grouped by type.
func (z *Zone) LookupAll(name string) map[dnswire.Type][]*dnswire.RR {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make(map[dnswire.Type][]*dnswire.RR)
	for k, set := range z.sets {
		if k.name == name {
			out[k.typ] = append([]*dnswire.RR(nil), set...)
		}
	}
	return out
}

// HasName reports whether any RRset is owned by name.
func (z *Zone) HasName(name string) bool {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	for k := range z.sets {
		if k.name == name {
			return true
		}
	}
	return false
}

// Names returns every owner name in canonical (RFC 4034 section 6.1) order.
func (z *Zone) Names() []string {
	z.mu.RLock()
	seen := make(map[string]bool)
	for k := range z.sets {
		seen[k.name] = true
	}
	z.mu.RUnlock()
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return dnswire.CompareCanonical(names[i], names[j]) < 0
	})
	return names
}

// RRSets invokes fn for every RRset in deterministic order. fn must not
// mutate the zone.
func (z *Zone) RRSets(fn func(name string, t dnswire.Type, rrs []*dnswire.RR)) {
	z.mu.RLock()
	keys := make([]rrKey, 0, len(z.sets))
	for k := range z.sets {
		keys = append(keys, k)
	}
	z.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if c := dnswire.CompareCanonical(keys[i].name, keys[j].name); c != 0 {
			return c < 0
		}
		return keys[i].typ < keys[j].typ
	})
	for _, k := range keys {
		z.mu.RLock()
		set := append([]*dnswire.RR(nil), z.sets[k]...)
		z.mu.RUnlock()
		if len(set) > 0 {
			fn(k.name, k.typ, set)
		}
	}
}

// Len returns the total number of records.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, set := range z.sets {
		n += len(set)
	}
	return n
}

// SOA returns the apex SOA record, or nil.
func (z *Zone) SOA() *dnswire.RR {
	set := z.Lookup(z.Origin, dnswire.TypeSOA)
	if len(set) == 0 {
		return nil
	}
	return set[0]
}

// BumpSerial increments the SOA serial, creating change visibility for
// secondaries and scanners. It emits an apex-scoped event: only cached
// responses that embed apex-owned records (the SOA in negative answers,
// apex RRset answers) depend on the serial, so per-mutation serial bumps
// do not flush the rest of the zone's cached responses.
func (z *Zone) BumpSerial() {
	z.mu.Lock()
	z.gen.Add(1)
	for _, rr := range z.sets[rrKey{z.Origin, dnswire.TypeSOA}] {
		if soa, ok := rr.Data.(*dnswire.SOA); ok {
			soa.Serial++
		}
	}
	ev := z.eventLocked(z.Origin, dnswire.TypeSOA, false)
	z.gen.Add(1)
	subs := z.subs
	z.mu.Unlock()
	notify(subs, ev)
}

// DelegationFor finds the closest delegation cut at or above qname (strictly
// below the apex). It returns the cut name and its NS RRset, or "" when
// qname is authoritatively inside this zone.
func (z *Zone) DelegationFor(qname string) (string, []*dnswire.RR) {
	qname = dnswire.CanonicalName(qname)
	if !dnswire.IsSubdomain(qname, z.Origin) {
		return "", nil
	}
	// Walk from qname up to (but excluding) the apex looking for NS sets.
	for cur := qname; cur != z.Origin; {
		if ns := z.Lookup(cur, dnswire.TypeNS); len(ns) > 0 {
			return cur, ns
		}
		p, ok := dnswire.Parent(cur)
		if !ok || !dnswire.IsSubdomain(p, z.Origin) {
			break
		}
		cur = p
	}
	return "", nil
}

// IsDelegated reports whether qname falls at or under a delegation cut
// (i.e. this zone is not authoritative for it, except for the DS RRset at
// the cut itself, which the caller must special-case).
func (z *Zone) IsDelegated(qname string) bool {
	cut, _ := z.DelegationFor(qname)
	return cut != ""
}

// Clone produces a deep-enough copy: RRset slices are copied; the records
// themselves are shared (they are treated as immutable once added).
func (z *Zone) Clone() *Zone {
	z.mu.RLock()
	defer z.mu.RUnlock()
	c := New(z.Origin)
	c.DefaultTTL = z.DefaultTTL
	c.nsecSets, c.cnameSets = z.nsecSets, z.cnameSets
	for k, set := range z.sets {
		c.sets[k] = append([]*dnswire.RR(nil), set...)
	}
	return c
}

func present(name string) string {
	if name == "" {
		return "."
	}
	return name
}
