package zone

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"securepki.org/registrarsec/internal/dnswire"
)

// randomZone builds a random but valid zone for property tests.
func randomZone(r *rand.Rand) *Zone {
	origin := fmt.Sprintf("z%d.example", r.Intn(1000))
	z := New(origin)
	z.MustAdd(dnswire.NewRR(origin, 3600, &dnswire.SOA{
		MName: "ns1." + origin, RName: "admin." + origin,
		Serial: uint32(r.Intn(1 << 30)), Refresh: 7200, Retry: 3600,
		Expire: 1209600, Minimum: uint32(60 + r.Intn(3600)),
	}))
	z.MustAdd(dnswire.NewRR(origin, 3600, &dnswire.NS{Host: "ns1." + origin}))
	n := 1 + r.Intn(20)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h%d.%s", r.Intn(30), origin)
		switch r.Intn(5) {
		case 0:
			z.MustAdd(dnswire.NewRR(name, uint32(60+r.Intn(86400)),
				&dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(r.Intn(256))})}))
		case 1:
			z.MustAdd(dnswire.NewRR(name, 300,
				&dnswire.AAAA{Addr: netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 15: byte(r.Intn(256))})}))
		case 2:
			z.MustAdd(dnswire.NewRR(name, 300,
				&dnswire.TXT{Strings: []string{fmt.Sprintf("v=%d", r.Intn(100))}}))
		case 3:
			z.MustAdd(dnswire.NewRR(name, 300,
				&dnswire.MX{Pref: uint16(r.Intn(100)), Host: "mx." + origin}))
		case 4:
			z.MustAdd(dnswire.NewRR(name, 300,
				&dnswire.CNAME{Target: fmt.Sprintf("c%d.%s", r.Intn(30), origin)}))
		}
	}
	return z
}

// TestZoneSerializeParseProperty: any zone survives a serialize→parse round
// trip with identical record count and identical re-serialization.
func TestZoneSerializeParseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := randomZone(r)
		var buf bytes.Buffer
		if _, err := z.WriteTo(&buf); err != nil {
			return false
		}
		z2, err := Parse(bytes.NewReader(buf.Bytes()), "")
		if err != nil {
			return false
		}
		if z2.Origin != z.Origin || z2.Len() != z.Len() {
			return false
		}
		var buf2 bytes.Buffer
		if _, err := z2.WriteTo(&buf2); err != nil {
			return false
		}
		return bytes.Equal(buf.Bytes(), buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSignedZoneAlwaysVerifiableProperty: signing any random zone yields a
// DS↔DNSKEY pair that matches and a signed SOA RRset.
func TestSignedZoneAlwaysVerifiableProperty(t *testing.T) {
	signer := newTestSigner(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := randomZone(r)
		if err := signer.Sign(z); err != nil {
			return false
		}
		dss, err := signer.DSRecords(z.Origin, dnswire.DigestSHA256)
		if err != nil || len(dss) == 0 {
			return false
		}
		keys := z.Lookup(z.Origin, dnswire.TypeDNSKEY)
		if len(keys) != 2 {
			return false
		}
		// Every non-RRSIG RRset at the apex must have a covering RRSIG.
		for typ := range z.LookupAll(z.Origin) {
			if typ == dnswire.TypeRRSIG {
				continue
			}
			if len(sigsFor(z, z.Origin, typ)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
