package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// Parse reads a zone in master-file format (RFC 1035 section 5). It
// supports $ORIGIN and $TTL directives, "@", relative names, parenthesized
// continuations, ";" comments and quoted character strings. defaultOrigin
// seeds $ORIGIN; a $ORIGIN directive in the file overrides it.
func Parse(r io.Reader, defaultOrigin string) (*Zone, error) {
	origin := dnswire.CanonicalName(defaultOrigin)
	z := New(origin)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var ttl uint32 = 3600
	ttlSet := false
	lastName := origin
	lineNo := 0
	var pending []string // token accumulation across parenthesized lines
	parens := 0
	pendingStart := 0

	processEntry := func(tokens []string, startLine int) error {
		if len(tokens) == 0 {
			return nil
		}
		switch tokens[0] {
		case "$ORIGIN":
			if len(tokens) != 2 {
				return fmt.Errorf("line %d: $ORIGIN needs one argument", startLine)
			}
			origin = dnswire.CanonicalName(tokens[1])
			return nil
		case "$TTL":
			if len(tokens) != 2 {
				return fmt.Errorf("line %d: $TTL needs one argument", startLine)
			}
			v, err := parseTTL(tokens[1])
			if err != nil {
				return fmt.Errorf("line %d: %v", startLine, err)
			}
			ttl = v
			ttlSet = true
			z.DefaultTTL = v
			return nil
		}
		rr, err := parseRecordTokens(tokens, origin, lastName, ttl, startLine)
		if err != nil {
			return err
		}
		lastName = rr.Name
		if !ttlSet && rr.TTL == 0 {
			rr.TTL = z.DefaultTTL
		}
		return z.Add(rr)
	}

	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		tokens, opens, closes, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		// Leading whitespace means "same owner as previous record"; mark it
		// with an explicit sentinel only at the start of an entry.
		if parens == 0 && len(tokens) > 0 && len(line) > 0 && (line[0] == ' ' || line[0] == '\t') {
			tokens = append([]string{blankOwner}, tokens...)
		}
		if parens == 0 {
			pending = tokens
			pendingStart = lineNo
		} else {
			pending = append(pending, tokens...)
		}
		parens += opens - closes
		if parens < 0 {
			return nil, fmt.Errorf("line %d: unbalanced ')'", lineNo)
		}
		if parens == 0 {
			if err := processEntry(pending, pendingStart); err != nil {
				return nil, err
			}
			pending = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if parens != 0 {
		return nil, fmt.Errorf("line %d: unclosed '('", lineNo)
	}
	z.Origin = origin
	return z, nil
}

// blankOwner marks an entry that inherits the previous owner name.
const blankOwner = "\x00blank"

// stripComment removes a ";" comment, respecting quoted strings.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// tokenize splits a line into tokens, treating parentheses as structure and
// honoring quoted strings. It returns tokens plus the count of opening and
// closing parens.
func tokenize(line string) (tokens []string, opens, closes int, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			opens++
			i++
		case c == ')':
			closes++
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j >= len(line) {
				return nil, 0, 0, fmt.Errorf("unterminated quote")
			}
			tokens = append(tokens, "\""+line[i+1:j]) // keep a marker for "quoted"
			i = j + 1
		default:
			j := i
			for j < len(line) && !strings.ContainsRune(" \t()", rune(line[j])) {
				j++
			}
			tokens = append(tokens, line[i:j])
			i = j
		}
	}
	return tokens, opens, closes, nil
}

// parseTTL accepts plain seconds or BIND-style unit suffixes (1h30m, 2d, 1w).
func parseTTL(s string) (uint32, error) {
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return uint32(v), nil
	}
	total := time.Duration(0)
	rest := strings.ToLower(s)
	if rest == "" {
		return 0, fmt.Errorf("empty TTL")
	}
	for rest != "" {
		i := 0
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		if i == 0 || i == len(rest) {
			return 0, fmt.Errorf("bad TTL %q", s)
		}
		n, _ := strconv.Atoi(rest[:i])
		var unit time.Duration
		switch rest[i] {
		case 's':
			unit = time.Second
		case 'm':
			unit = time.Minute
		case 'h':
			unit = time.Hour
		case 'd':
			unit = 24 * time.Hour
		case 'w':
			unit = 7 * 24 * time.Hour
		default:
			return 0, fmt.Errorf("bad TTL unit %q", s)
		}
		total += time.Duration(n) * unit
		rest = rest[i+1:]
	}
	return uint32(total / time.Second), nil
}

// absName resolves a possibly-relative presentation name against origin.
func absName(tok, origin string) string {
	if tok == "@" {
		return origin
	}
	if strings.HasSuffix(tok, ".") {
		return dnswire.CanonicalName(tok)
	}
	n := dnswire.CanonicalName(tok)
	if origin == "" {
		return n
	}
	return n + "." + origin
}

// parseRecordTokens decodes one record entry.
func parseRecordTokens(tokens []string, origin, lastName string, defTTL uint32, line int) (*dnswire.RR, error) {
	name := lastName
	i := 0
	if tokens[0] == blankOwner {
		i = 1
	} else {
		name = absName(tokens[0], origin)
		i = 1
	}
	ttl := defTTL
	class := dnswire.ClassINET
	// TTL and class may appear in either order before the type.
	for i < len(tokens) {
		tok := tokens[i]
		if tok == "IN" {
			i++
			continue
		}
		if v, err := parseTTL(tok); err == nil && !isTypeToken(tok) {
			ttl = v
			i++
			continue
		}
		break
	}
	if i >= len(tokens) {
		return nil, fmt.Errorf("line %d: missing record type", line)
	}
	typ, ok := dnswire.TypeFromString(tokens[i])
	if !ok {
		return nil, fmt.Errorf("line %d: unknown record type %q", line, tokens[i])
	}
	i++
	data, err := parseRData(typ, tokens[i:], origin, line)
	if err != nil {
		return nil, err
	}
	return &dnswire.RR{Name: name, Type: typ, Class: class, TTL: ttl, Data: data}, nil
}

// isTypeToken reports whether tok names an RR type; guards against TTL
// parsing swallowing types like "NS" (it cannot, but be explicit).
func isTypeToken(tok string) bool {
	_, ok := dnswire.TypeFromString(tok)
	return ok
}

func unquote(tok string) string {
	return strings.TrimPrefix(tok, "\"")
}

// parseRData decodes the presentation RDATA for the supported types.
func parseRData(t dnswire.Type, f []string, origin string, line int) (dnswire.RData, error) {
	need := func(n int) error {
		if len(f) < n {
			return fmt.Errorf("line %d: %v needs %d fields, have %d", line, t, n, len(f))
		}
		return nil
	}
	u32 := func(s string) (uint32, error) {
		v, err := strconv.ParseUint(s, 10, 32)
		return uint32(v), err
	}
	u16 := func(s string) (uint16, error) {
		v, err := strconv.ParseUint(s, 10, 16)
		return uint16(v), err
	}
	u8 := func(s string) (uint8, error) {
		v, err := strconv.ParseUint(s, 10, 8)
		return uint8(v), err
	}
	switch t {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(f[0])
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("line %d: bad A address %q", line, f[0])
		}
		return &dnswire.A{Addr: a}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(f[0])
		if err != nil || !a.Is6() {
			return nil, fmt.Errorf("line %d: bad AAAA address %q", line, f[0])
		}
		return &dnswire.AAAA{Addr: a}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.NS{Host: absName(f[0], origin)}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.CNAME{Target: absName(f[0], origin)}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.PTR{Target: absName(f[0], origin)}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := u16(f[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad MX preference: %v", line, err)
		}
		return &dnswire.MX{Pref: pref, Host: absName(f[1], origin)}, nil
	case dnswire.TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		ss := make([]string, len(f))
		for i, tok := range f {
			ss[i] = unquote(tok)
		}
		return &dnswire.TXT{Strings: ss}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := 0; i < 5; i++ {
			v, err := parseTTL(f[2+i])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad SOA field %q", line, f[2+i])
			}
			vals[i] = v
		}
		return &dnswire.SOA{
			MName: absName(f[0], origin), RName: absName(f[1], origin),
			Serial: vals[0], Refresh: vals[1], Retry: vals[2], Expire: vals[3], Minimum: vals[4],
		}, nil
	case dnswire.TypeDNSKEY, dnswire.TypeCDNSKEY:
		if err := need(4); err != nil {
			return nil, err
		}
		flags, err1 := u16(f[0])
		proto, err2 := u8(f[1])
		alg, err3 := u8(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad DNSKEY fields", line)
		}
		key, err := base64.StdEncoding.DecodeString(strings.Join(f[3:], ""))
		if err != nil {
			return nil, fmt.Errorf("line %d: bad DNSKEY base64: %v", line, err)
		}
		dk := dnswire.DNSKEY{Flags: flags, Protocol: proto, Algorithm: dnswire.Algorithm(alg), PublicKey: key}
		if t == dnswire.TypeCDNSKEY {
			return &dnswire.CDNSKEY{DNSKEY: dk}, nil
		}
		return &dk, nil
	case dnswire.TypeDS, dnswire.TypeCDS:
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err1 := u16(f[0])
		alg, err2 := u8(f[1])
		dt, err3 := u8(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad DS fields", line)
		}
		digest, err := hex.DecodeString(strings.ToLower(strings.Join(f[3:], "")))
		if err != nil {
			return nil, fmt.Errorf("line %d: bad DS digest hex: %v", line, err)
		}
		ds := dnswire.DS{KeyTag: tag, Algorithm: dnswire.Algorithm(alg), DigestType: dnswire.DigestType(dt), Digest: digest}
		if t == dnswire.TypeCDS {
			return &dnswire.CDS{DS: ds}, nil
		}
		return &ds, nil
	case dnswire.TypeRRSIG:
		if err := need(9); err != nil {
			return nil, err
		}
		covered, ok := dnswire.TypeFromString(f[0])
		if !ok {
			return nil, fmt.Errorf("line %d: bad RRSIG covered type %q", line, f[0])
		}
		alg, err1 := u8(f[1])
		labels, err2 := u8(f[2])
		ottl, err3 := u32(f[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad RRSIG fields", line)
		}
		exp, err := parseRRSIGTime(f[4])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		inc, err := parseRRSIGTime(f[5])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		tag, err := u16(f[6])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad RRSIG key tag", line)
		}
		sigBytes, err := base64.StdEncoding.DecodeString(strings.Join(f[8:], ""))
		if err != nil {
			return nil, fmt.Errorf("line %d: bad RRSIG base64: %v", line, err)
		}
		return &dnswire.RRSIG{
			TypeCovered: covered, Algorithm: dnswire.Algorithm(alg), Labels: labels,
			OriginalTTL: ottl, Expiration: exp, Inception: inc, KeyTag: tag,
			SignerName: absName(f[7], origin), Signature: sigBytes,
		}, nil
	case dnswire.TypeNSEC3:
		if err := need(5); err != nil {
			return nil, err
		}
		alg, err1 := u8(f[0])
		flags, err2 := u8(f[1])
		iter, err3 := u16(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad NSEC3 fields", line)
		}
		var salt []byte
		if f[3] != "-" {
			salt, err1 = hex.DecodeString(strings.ToLower(f[3]))
			if err1 != nil {
				return nil, fmt.Errorf("line %d: bad NSEC3 salt", line)
			}
		}
		next, err := dnswire.Base32HexDecode(f[4])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad NSEC3 next hash: %v", line, err)
		}
		var types []dnswire.Type
		for _, tok := range f[5:] {
			tt, ok := dnswire.TypeFromString(tok)
			if !ok {
				return nil, fmt.Errorf("line %d: bad NSEC3 type %q", line, tok)
			}
			types = append(types, tt)
		}
		return &dnswire.NSEC3{
			HashAlg: alg, Flags: flags, Iterations: iter,
			Salt: salt, NextHashed: next, Types: types,
		}, nil
	case dnswire.TypeNSEC3PARAM:
		if err := need(4); err != nil {
			return nil, err
		}
		alg, err1 := u8(f[0])
		flags, err2 := u8(f[1])
		iter, err3 := u16(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad NSEC3PARAM fields", line)
		}
		var salt []byte
		if f[3] != "-" {
			var err error
			salt, err = hex.DecodeString(strings.ToLower(f[3]))
			if err != nil {
				return nil, fmt.Errorf("line %d: bad NSEC3PARAM salt", line)
			}
		}
		return &dnswire.NSEC3PARAM{HashAlg: alg, Flags: flags, Iterations: iter, Salt: salt}, nil
	case dnswire.TypeNSEC:
		if err := need(1); err != nil {
			return nil, err
		}
		var types []dnswire.Type
		for _, tok := range f[1:] {
			tt, ok := dnswire.TypeFromString(tok)
			if !ok {
				return nil, fmt.Errorf("line %d: bad NSEC type %q", line, tok)
			}
			types = append(types, tt)
		}
		return &dnswire.NSEC{NextName: absName(f[0], origin), Types: types}, nil
	default:
		// RFC 3597 generic form: \# length hexdata
		if len(f) >= 2 && f[0] == "\\#" {
			data, err := hex.DecodeString(strings.Join(f[2:], ""))
			if err != nil {
				return nil, fmt.Errorf("line %d: bad generic rdata: %v", line, err)
			}
			return &dnswire.Generic{T: t, Data: data}, nil
		}
		return nil, fmt.Errorf("line %d: cannot parse rdata for %v", line, t)
	}
}

// parseRRSIGTime accepts YYYYMMDDHHmmSS or raw epoch seconds.
func parseRRSIGTime(s string) (uint32, error) {
	if len(s) == 14 {
		tm, err := time.Parse("20060102150405", s)
		if err == nil {
			return uint32(tm.Unix()), nil
		}
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad RRSIG time %q", s)
	}
	return uint32(v), nil
}

// WriteTo serializes the zone in master-file format, starting with $ORIGIN
// and $TTL directives. Output is deterministic (canonical ordering).
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("$ORIGIN %s\n$TTL %d\n", presentDot(z.Origin), z.DefaultTTL); err != nil {
		return total, err
	}
	var outErr error
	z.RRSets(func(name string, t dnswire.Type, rrs []*dnswire.RR) {
		if outErr != nil {
			return
		}
		for _, rr := range rrs {
			if err := emit("%s\n", rr.String()); err != nil {
				outErr = err
				return
			}
		}
	})
	return total, outErr
}

func presentDot(name string) string {
	if name == "" {
		return "."
	}
	return name + "."
}
