package zone

import (
	"securepki.org/registrarsec/internal/dnswire"
)

// First-class invalidation: every committed mutation emits an Event scoped
// to the smallest set of cached responses it can possibly affect, and a
// seqlock-style generation counter lets a cache fill detect that the zone
// changed between rendering a response and inserting it.
//
// Scoping rules (conservative by construction — an event may over-flush,
// never under-flush):
//
//   - Mutations touching NSEC/NSEC3/NSEC3PARAM data, or RRSIGs covering
//     them, escalate to ScopeZone: denial-of-existence proofs are chosen by
//     canonical-order spans, so one chain link can appear in responses for
//     arbitrary qnames.
//   - While a zone contains an NSEC chain, creating or destroying an owner
//     name escalates to ScopeZone for the same reason (the covering span of
//     every nearby name changes).
//   - While a zone contains any CNAME, every mutation escalates to
//     ScopeZone: a chased answer for owner O embeds records of target T, so
//     a name-scoped flush at T would strand O's cached response.
//   - Apex mutations (including BumpSerial) emit ScopeApex: only responses
//     that embed apex-owned records — negative answers carrying the SOA,
//     answers for the apex itself — depend on them.
//   - Everything else is ScopeName at the mutated owner; the cache layer
//     widens a name event to the enclosing delegation cut's subtree, which
//     covers referrals and their glue.
type Scope uint8

const (
	// ScopeName invalidates responses derived from one owner name (and, at
	// or under a delegation cut, the subtree the cut covers).
	ScopeName Scope = iota
	// ScopeApex invalidates responses embedding apex-owned records.
	ScopeApex
	// ScopeZone invalidates every response derived from the zone.
	ScopeZone
)

// Event describes one committed mutation.
type Event struct {
	// Name is the mutated owner (canonical); meaningful for ScopeName.
	Name  string
	Scope Scope
}

// OnEvent registers fn to be called after each mutation commits. Callbacks
// run outside the zone lock (reads from inside fn are safe) but on the
// mutating goroutine, so they must be fast and must not mutate the zone.
func (z *Zone) OnEvent(fn func(Event)) {
	z.mu.Lock()
	z.subs = append(z.subs, fn)
	z.mu.Unlock()
}

// Generation returns the zone's mutation counter. It is odd while a
// mutation is in progress and even when the zone is quiescent; a cache fill
// pins an even generation before rendering and discards the entry if the
// value changed by insert time.
func (z *Zone) Generation() uint64 {
	return z.gen.Load()
}

// eventLocked classifies a committed mutation at name affecting RRsets of
// type affects. structural reports that an owner name was created or
// destroyed; callers only need to compute it when the zone has an NSEC
// chain. z.mu must be held.
func (z *Zone) eventLocked(name string, affects dnswire.Type, structural bool) Event {
	switch {
	case affects == dnswire.TypeNSEC || affects == dnswire.TypeNSEC3 || affects == dnswire.TypeNSEC3PARAM:
		return Event{Scope: ScopeZone}
	case structural && z.nsecSets > 0:
		return Event{Scope: ScopeZone}
	case z.cnameSets > 0:
		return Event{Scope: ScopeZone}
	case name == z.Origin:
		return Event{Name: name, Scope: ScopeApex}
	default:
		return Event{Name: name, Scope: ScopeName}
	}
}

// trackSetAdded/trackSetRemoved maintain the NSEC/CNAME RRset counters that
// drive escalation. z.mu must be held.
func (z *Zone) trackSetAdded(t dnswire.Type) {
	switch t {
	case dnswire.TypeNSEC, dnswire.TypeNSEC3:
		z.nsecSets++
	case dnswire.TypeCNAME:
		z.cnameSets++
	}
}

func (z *Zone) trackSetRemoved(t dnswire.Type) {
	switch t {
	case dnswire.TypeNSEC, dnswire.TypeNSEC3:
		z.nsecSets--
	case dnswire.TypeCNAME:
		z.cnameSets--
	}
}

// hasNameLocked is HasName without taking the lock.
func (z *Zone) hasNameLocked(name string) bool {
	for k := range z.sets {
		if k.name == name {
			return true
		}
	}
	return false
}

// needStructural reports whether a mutation must pay the owner-name
// existence scan: only when someone is listening and the zone has an NSEC
// chain that makes structural changes zone-wide. z.mu must be held.
func (z *Zone) needStructural() bool {
	return len(z.subs) > 0 && z.nsecSets > 0
}

func notify(subs []func(Event), ev Event) {
	for _, fn := range subs {
		fn(ev)
	}
}
