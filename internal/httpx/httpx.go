// Package httpx holds the hardened http.Server construction shared by the
// repo's daemons (regsec-api, regsec-sweepd). The zero-value http.Server
// has no timeouts at all, so a single slow or stalled client connection
// can pin a handler goroutine — and its open file descriptor — forever;
// every long-running listener in this repo goes through NewServer so that
// failure mode is closed off in exactly one place.
package httpx

import (
	"net/http"
	"time"
)

// The default budgets. They bound a *connection's* bad behavior, not a
// handler's work: request deadlines and admission control are layered on
// top by the caller (see apiserv).
const (
	// DefaultReadHeaderTimeout caps how long a connection may dribble its
	// request headers (slowloris).
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout caps reading one full request.
	DefaultReadTimeout = 30 * time.Second
	// DefaultWriteTimeout caps writing one full response to a slow client.
	DefaultWriteTimeout = 60 * time.Second
	// DefaultIdleTimeout reaps keep-alive connections parked without a
	// next request.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultMaxHeaderBytes bounds per-request header memory.
	DefaultMaxHeaderBytes = 1 << 20
)

// NewServer returns an http.Server for h with every connection-level
// timeout set. Callers needing different budgets adjust the returned
// struct before Serve; leaving any of them unset is the bug this package
// exists to prevent.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
		MaxHeaderBytes:    DefaultMaxHeaderBytes,
	}
}
