package httpx

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewServerSetsEveryTimeout(t *testing.T) {
	srv := NewServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 ||
		srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 || srv.MaxHeaderBytes <= 0 {
		t.Fatalf("NewServer left a limit unset: %+v", srv)
	}
}

// TestSlowClientDisconnected is the regression test for the unbounded
// servers this package replaced: a client that dribbles headers forever
// (slowloris) must be disconnected by the read-header budget, not pin a
// goroutine until process exit.
func TestSlowClientDisconnected(t *testing.T) {
	srv := NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	srv.ReadHeaderTimeout = 100 * time.Millisecond
	srv.ReadTimeout = 200 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Open a request but never finish the header block.
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: stalled\r\n"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a request whose headers never completed")
	}
	// Reaching here within the read deadline means the server hung up on
	// its own initiative — the stalled connection did not outlive the
	// header budget.
}

// TestFastRequestStillServed: the budgets must not break ordinary
// request/response traffic.
func TestFastRequestStillServed(t *testing.T) {
	srv := NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("got %d %q (%v), want 200 ok", resp.StatusCode, body, err)
	}
}
