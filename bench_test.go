// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark measures the cost of producing its artifact
// and prints the reproduced rows/series once, so `go test -bench .` doubles
// as the experiment runner. EXPERIMENTS.md records paper-vs-measured for
// each one.
package registrarsec

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"time"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/ecosystem"
	"securepki.org/registrarsec/internal/epp"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
	"securepki.org/registrarsec/internal/whois"
)

// sharedStudy lazily builds one world for all measurement benches.
var (
	studyOnce   sync.Once
	sharedStudy *Study
	studyErr    error
)

func getStudy(b *testing.B) *Study {
	b.Helper()
	studyOnce.Do(func() {
		sharedStudy, studyErr = NewStudy(Options{Scale: 1.0 / 250, Seed: 1})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return sharedStudy
}

// printOnce guards artifact printing across bench iterations.
var printed sync.Map

func emit(name, text string) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, text)
	}
}

// ---------------------------------------------------------------- Table 1

func BenchmarkTable1DatasetOverview(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var rows []TLDOverview
	for i := 0; i < b.N; i++ {
		rows = s.Table1()
	}
	b.StopTimer()
	text := RenderTable1(rows)
	text += "\npaper: .com 0.7% / .net 1.0% / .org 1.1% / .nl 51.6% / .se 46.7% with DNSKEY\n"
	emit("Table 1: dataset overview (2016-12-31)", text)
}

// ---------------------------------------------------------------- Table 2

func BenchmarkTable2PopularRegistrars(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		// A fresh study per iteration: probing mutates registrar state.
		s, err := NewStudy(Options{SkipWorld: true})
		if err != nil {
			b.Fatal(err)
		}
		obs := s.ProbeTable2()
		sum := Summarize(obs)
		text = getStudy(b).RenderTable2(obs)
		text += fmt.Sprintf("\nmeasured: hosted support %d/20 (default %d, paid %d), owner support %d/20, email channels %d, DS validators %d\n",
			sum.HostedSupport, sum.HostedDefault, sum.HostedPaid, sum.OwnerSupport, sum.EmailChannel, sum.ValidateDS)
		text += "paper:    hosted support 3/20 (default 1, paid 1), owner support 11/20, email channels 3, DS validators 2\n"
	}
	emit("Table 2: top-20 registrar probe", text)
}

// ---------------------------------------------------------------- Table 3

func BenchmarkTable3DNSSECRegistrars(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		s, err := NewStudy(Options{SkipWorld: true})
		if err != nil {
			b.Fatal(err)
		}
		obs := s.ProbeTable3()
		sum := Summarize(obs)
		text = getStudy(b).RenderTable3(obs)
		text += fmt.Sprintf("\nmeasured: hosted by default %d/10, owner support %d/10, DS validators %d\n",
			sum.HostedDefault, sum.OwnerSupport, sum.ValidateDS)
		text += "paper:    hosted by default 9/10, owner support 8/10, DS validators 2 (OVH, PCExtreme)\n"
	}
	emit("Table 3: DNSSEC-heavy registrar probe", text)
}

// ---------------------------------------------------------------- Table 4

func BenchmarkTable4RegistrarResellerMatrix(b *testing.B) {
	s := getStudy(b)
	var rows []SurveyRow
	for i := 0; i < b.N; i++ {
		rows = s.SurveyTable4()
	}
	emit("Table 4: registrar/reseller roles per TLD", RenderTable4(rows))
}

// --------------------------------------------------------------- Figure 3

func BenchmarkFigure3OperatorCDF(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var all, partial, full []CDFPoint
	for i := 0; i < b.N; i++ {
		all, partial, full = s.Figure3()
	}
	b.StopTimer()
	text := fmt.Sprintf("operators: %d (all) / %d (partial) / %d (full)\n", len(all), len(partial), len(full))
	text += fmt.Sprintf("to cover 50%%: all=%d  partial=%d  full=%d   (paper: 26 / 4 / 2)\n",
		OperatorsToCover(all, 0.5), OperatorsToCover(partial, 0.5), OperatorsToCover(full, 0.5))
	text += fmt.Sprintf("top-25 overlap all vs full: %d (paper: 3)\n", analysis.TopOverlap(all, full, 25))
	text += "top fully deployed operators:\n"
	for i := 0; i < 5 && i < len(full); i++ {
		text += fmt.Sprintf("  %d. %-22s %7d domains  (cum %.1f%%)\n", i+1, full[i].Operator, full[i].Count, 100*full[i].CumFrac)
	}
	emit("Figure 3: CDF of domains by DNS operator (gTLDs)", text)
}

// --------------------------------------------------------------- Figure 4

func seriesText(label string, pts []SeriesPoint, every int) string {
	out := ""
	for i, p := range pts {
		if i%every != 0 && i != len(pts)-1 {
			continue
		}
		out += fmt.Sprintf("  %s  %s  total=%-7d DNSKEY=%6.2f%%  full=%6.2f%%\n",
			label, p.Day, p.Total, p.PctDNSKEY(), p.PctFull())
	}
	return out
}

func BenchmarkFigure4OVHvsGoDaddy(b *testing.B) {
	s := getStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ovh, gd []SeriesPoint
	for i := 0; i < b.N; i++ {
		ovh, gd = s.Figure4(30)
	}
	b.StopTimer()
	text := seriesText("OVH    ", ovh, 4) + seriesText("GoDaddy", gd, 4)
	text += fmt.Sprintf("\nmeasured end: OVH %.1f%% full, GoDaddy %.2f%% full  (paper: 25.9%% / 0.02%%)\n",
		ovh[len(ovh)-1].PctFull(), gd[len(gd)-1].PctFull())
	emit("Figure 4: OVH (free opt-in) vs GoDaddy (paid)", text)
}

// --------------------------------------------------------------- Figure 5

func BenchmarkFigure5LoopiaKPN(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var loopiaSE, loopiaCOM, kpnNL, kpnCOM []SeriesPoint
	for i := 0; i < b.N; i++ {
		loopiaSE = s.Series("loopia.se", "se", simtime.SEStart, simtime.End, 30)
		loopiaCOM = s.Series("loopia.se", "com", simtime.GTLDStart, simtime.End, 60)
		kpnNL = s.Series("is.nl", "nl", simtime.NLStart, simtime.End, 30)
		kpnCOM = s.Series("is.nl", "com", simtime.GTLDStart, simtime.End, 60)
	}
	b.StopTimer()
	last := func(p []SeriesPoint) SeriesPoint { return p[len(p)-1] }
	text := fmt.Sprintf("Loopia: .se full %.1f%%, .com full %.1f%% (DNSKEY %.1f%%)   (paper: ~95%% / 0%% signed-but-partial)\n",
		last(loopiaSE).PctFull(), last(loopiaCOM).PctFull(), last(loopiaCOM).PctDNSKEY())
	text += fmt.Sprintf("KPN:    .nl full %.1f%%, .com full %.1f%% (DNSKEY %.1f%%)   (paper: ~97%% / 0%% signed-but-partial)\n",
		last(kpnNL).PctFull(), last(kpnCOM).PctFull(), last(kpnCOM).PctDNSKEY())
	emit("Figure 5: Loopia and KPN sign everywhere, upload DS only where incentivized", text)
}

// --------------------------------------------------------------- Figure 6

func BenchmarkFigure6AntagonistBinero(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var antCOM, antNL, binSE, binCOM []SeriesPoint
	for i := 0; i < b.N; i++ {
		antCOM = s.Series("webhostingserver.nl", "com", simtime.GTLDStart, simtime.End, 30)
		antNL = s.Series("webhostingserver.nl", "nl", simtime.NLStart, simtime.End, 60)
		binSE = s.Series("binero.se", "se", simtime.SEStart, simtime.End, 60)
		binCOM = s.Series("binero.se", "com", simtime.GTLDStart, simtime.End, 60)
	}
	b.StopTimer()
	last := func(p []SeriesPoint) SeriesPoint { return p[len(p)-1] }
	text := "Antagonist .com ramp (renewal-driven migration to OpenProvider):\n"
	text += seriesText("ant .com", antCOM, 3)
	text += fmt.Sprintf("\nmeasured end: Antagonist .com %.1f%% (.nl %.1f%%), Binero .se %.1f%% (.com %.1f%%)\n",
		last(antCOM).PctFull(), last(antNL).PctFull(), last(binSE).PctFull(), last(binCOM).PctFull())
	text += "paper:        Antagonist .com 52.7% (.nl 95.4%), Binero .se 92.9% (.com 37.8%)\n"
	emit("Figure 6: Antagonist and Binero", text)
}

// --------------------------------------------------------------- Figure 7

func BenchmarkFigure7TransIPPCExtreme(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var pcx, tipCOM, tipSE []SeriesPoint
	for i := 0; i < b.N; i++ {
		pcx = s.Series("pcextreme.nl", "com", simtime.GTLDStart-20, simtime.End, 5)
		tipCOM = s.Series("transip.net", "com", simtime.GTLDStart, simtime.End, 60)
		tipSE = s.Series("transip.net", "se", simtime.SEStart, simtime.End, 30)
	}
	b.StopTimer()
	last := func(p []SeriesPoint) SeriesPoint { return p[len(p)-1] }
	text := "PCExtreme step (2015-03, 0.44%→98.3% in ten days):\n"
	text += seriesText("pcx .com", pcx[:12], 1)
	text += fmt.Sprintf("\nmeasured end: PCExtreme %.1f%%, TransIP .com %.1f%%, TransIP .se %.1f%%\n",
		last(pcx).PctFull(), last(tipCOM).PctFull(), last(tipSE).PctFull())
	text += "paper:        PCExtreme 97.0%, TransIP registrar-TLDs 99.2%, TransIP .se 48.4%\n"
	emit("Figure 7: PCExtreme and TransIP", text)
}

// --------------------------------------------------------------- Figure 8

func BenchmarkFigure8Cloudflare(b *testing.B) {
	s := getStudy(b)
	b.ResetTimer()
	var cf []SeriesPoint
	for i := 0; i < b.N; i++ {
		cf = s.Figure8(15)
	}
	b.StopTimer()
	text := ""
	for i, p := range cf {
		if i%3 != 0 && i != len(cf)-1 {
			continue
		}
		text += fmt.Sprintf("  %s  DNSKEY=%5.2f%%  DS|DNSKEY=%5.1f%%\n", p.Day, p.PctDNSKEY(), p.PctDSGivenDNSKEY())
	}
	lastP := cf[len(cf)-1]
	text += fmt.Sprintf("\nmeasured end: %.2f%% with DNSKEY; %.1f%% of those have DS  (paper: 1.9%% / 60.7%%)\n",
		lastP.PctDNSKEY(), lastP.PctDSGivenDNSKEY())
	emit("Figure 8: Cloudflare universal DNSSEC and the DS relay gap", text)
}

// ------------------------------------------------------- live-scan check

func BenchmarkScanSampleVerification(b *testing.B) {
	s := getStudy(b)
	ctx := context.Background()
	b.ResetTimer()
	var snap *Snapshot
	for i := 0; i < b.N; i++ {
		var err error
		snap, _, err = s.ScanSample(ctx, simtime.End, 200, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	counts := map[Deployment]int{}
	for i := range snap.Records {
		counts[snap.Records[i].Deployment()]++
	}
	emit("Live-scan verification (200 sampled domains, real signed zones)",
		fmt.Sprintf("none=%d partial=%d full=%d broken=%d\n",
			counts[DeploymentNone], counts[DeploymentPartial], counts[DeploymentFull], counts[DeploymentBroken]))
}

// -------------------------------------------------------------- ablations

// BenchmarkAblationGrouping compares operator-identification rules: the
// paper's second-level NS grouping vs full NS hostnames vs WHOIS parsing
// (section 4.2's methodology choice).
func BenchmarkAblationGrouping(b *testing.B) {
	s := getStudy(b)
	snap := s.World.SnapshotAt(simtime.End)
	b.Run("second-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops := map[string]int{}
			for j := range snap.Records {
				ops[dataset.GroupOperatorAll(snap.Records[j].NSHosts)]++
			}
			if len(ops) == 0 {
				b.Fatal("no operators")
			}
		}
	})
	b.Run("full-ns-host", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops := map[string]int{}
			for j := range snap.Records {
				if len(snap.Records[j].NSHosts) > 0 {
					ops[snap.Records[j].NSHosts[0]]++
				}
			}
			if len(ops) == 0 {
				b.Fatal("no operators")
			}
		}
	})
	b.Run("whois-parse", func(b *testing.B) {
		// WHOIS text per record, parsed best-effort; count parse failures.
		texts := make([]string, 0, 3000)
		for j := range snap.Records[:min(3000, len(snap.Records))] {
			r := &snap.Records[j]
			texts = append(texts, whois.Schemas[j%len(whois.Schemas)](whois.Record{
				Domain: r.Domain, Registrar: r.Operator, NameServers: r.NSHosts,
			}))
		}
		b.ResetTimer()
		fails := 0
		for i := 0; i < b.N; i++ {
			fails = 0
			for _, text := range texts {
				if _, err := whois.Parse(text); err != nil {
					fails++
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(fails)/float64(len(texts))*100, "parse-fail-%")
	})
}

// BenchmarkAblationCDS measures the Cloudflare DS gap with and without
// registry-side CDS polling — quantifying the paper's section 8
// recommendation that registries deploy RFC 7344.
func BenchmarkAblationCDS(b *testing.B) {
	run := func(b *testing.B, cdsPolling bool) float64 {
		b.Helper()
		var gap float64
		for i := 0; i < b.N; i++ {
			// Without polling, the relay completes with probability ~0.62
			// (the measured human behaviour); with polling the registry
			// fetches the DS itself, so every signed domain completes.
			relay := tldsim.DSSpec{Mode: tldsim.DSRelay, Prob: 0.622, LagMeanDays: 10}
			if cdsPolling {
				relay = tldsim.DSSpec{Mode: tldsim.DSWithKey}
			}
			world := simulateCDSWorld(b, relay)
			pts := world.SeriesFor("cloudflare.com", "", simtime.End, simtime.End, 1)
			gap = pts[0].PctDSGivenDNSKEY()
		}
		return gap
	}
	var without, with float64
	b.Run("manual-relay", func(b *testing.B) { without = run(b, false) })
	b.Run("cds-polling", func(b *testing.B) { with = run(b, true) })
	emit("Ablation: RFC 7344 CDS polling vs manual DS relay",
		fmt.Sprintf("DS completion for Cloudflare-signed domains: manual=%.1f%%  with CDS=%.1f%%  (paper gap: 60.7%% vs ideal 100%%)\n", without, with))
}

// simulateCDSWorld builds a minimal one-cohort world with the given DS
// behaviour.
func simulateCDSWorld(b *testing.B, ds tldsim.DSSpec) *tldsim.World {
	b.Helper()
	w, err := tldsim.BuildCustom(tldsim.WorldConfig{Scale: 1, Seed: 7}, []tldsim.Cohort{{
		Registrar: "Cloudflare", Operator: "cloudflare.com", TLD: "com", Domains: 20000,
		Key: tldsim.Launch(0.019, simtime.CloudflareUniversalDNSSEC),
		DS:  ds,
	}})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkScanWorkers sweeps one materialized sample with different
// worker-pool widths — the scan-concurrency ablation.
func BenchmarkScanWorkers(b *testing.B) {
	s := getStudy(b)
	sample := s.World.Sample(300, 11)
	mat, err := tldsim.Materialize(simtime.End, sample)
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]scan.Target, 0, len(sample))
	for _, d := range sample {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			scanner, err := scan.New(scan.Config{
				Exchange: mat.Net, TLDServers: mat.TLDServers,
				Workers: workers, Clock: func() simtime.Day { return simtime.End },
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				snap, _, err := scanner.ScanDay(context.Background(), simtime.End, targets)
				if err != nil {
					b.Fatal(err)
				}
				if len(snap.Records) != len(targets) {
					b.Fatalf("scanned %d of %d", len(snap.Records), len(targets))
				}
			}
		})
	}
}

// BenchmarkTransports compares one DNSSEC query round trip over the
// in-memory network vs real UDP loopback — the transport ablation that
// justifies simulating scans in memory.
func BenchmarkTransports(b *testing.B) {
	h, err := dnstest.NewHierarchy(simtime.End.Time(), "com")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := h.AddDomain("bench.com", "ns1.bench-op.net", dnstest.Full); err != nil {
		b.Fatal(err)
	}
	query := func(id uint16) *dnswire.Message {
		q := dnswire.NewQuery(id, "bench.com", dnswire.TypeDNSKEY)
		q.SetEDNS(4096, true)
		return q
	}
	b.Run("memnet", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			resp, err := h.Net.Exchange(ctx, "ns1.bench-op.net", query(uint16(i)))
			if err != nil || len(resp.Answers) == 0 {
				b.Fatalf("exchange: %v", err)
			}
		}
	})
	b.Run("udp", func(b *testing.B) {
		srv := &dnsserver.Server{Handler: h.OperatorServer("ns1.bench-op.net")}
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ex := &dnsserver.NetExchanger{Timeout: 2 * time.Second}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := ex.Exchange(ctx, srv.Addr(), query(uint16(i)))
			if err != nil || len(resp.Answers) == 0 {
				b.Fatalf("exchange: %v", err)
			}
		}
	})
}

// ------------------------------------------------------ micro benchmarks

func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tldsim.Build(tldsim.WorldConfig{Scale: 1.0 / 5000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotAt(b *testing.B) {
	s := getStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.World.SnapshotAt(simtime.End)
		if len(snap.Records) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkRecommendations projects the paper's section 8 recommendations
// as counterfactual worlds: what gTLD adoption would look like if the
// top-20 signed by default, if every registry polled CDS, or if the gTLDs
// paid .nl-style incentives.
func BenchmarkRecommendations(b *testing.B) {
	gtldStats := func(w *tldsim.World) (keyPct, fullPct float64) {
		snap := w.SnapshotAt(simtime.End)
		total, keyed, full := 0, 0, 0
		for i := range snap.Records {
			r := &snap.Records[i]
			if r.TLD != "com" && r.TLD != "net" && r.TLD != "org" {
				continue
			}
			total++
			if r.HasDNSKEY {
				keyed++
			}
			if analysis.FullyDeployed(r) {
				full++
			}
		}
		return 100 * float64(keyed) / float64(total), 100 * float64(full) / float64(total)
	}
	text := ""
	for _, sc := range []tldsim.Scenario{
		tldsim.Baseline, tldsim.DefaultDNSSEC, tldsim.UniversalCDS, tldsim.GTLDIncentives,
	} {
		b.Run(sc.String(), func(b *testing.B) {
			var key, full float64
			for i := 0; i < b.N; i++ {
				w, err := tldsim.BuildScenario(sc, tldsim.WorldConfig{Scale: 1.0 / 1000, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				key, full = gtldStats(w)
			}
			text += fmt.Sprintf("  %-20s gTLD %%DNSKEY=%6.2f  %%full=%6.2f\n", sc, key, full)
		})
	}
	emit("Section 8 recommendations as counterfactual projections (gTLDs, end of window)", text)
}

// BenchmarkEPPDSUpdate measures the registrar→registry DS-update operation
// over the real EPP protocol on loopback TCP — the provisioning path whose
// human detours the paper blames for the DS gap.
func BenchmarkEPPDSUpdate(b *testing.B) {
	eco, err := ecosystem.New(ecosystem.Config{TLDs: []string{"com"}})
	if err != nil {
		b.Fatal(err)
	}
	reg := eco.Registries["com"]
	reg.Accredit("bench")
	srv := &epp.Server{Registry: reg, Passwords: map[string]string{"bench": "pw"}}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := epp.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("bench", "pw"); err != nil {
		b.Fatal(err)
	}
	if err := c.CreateDomain("bench.com", []string{"ns1.op.net"}, nil); err != nil {
		b.Fatal(err)
	}
	ds := &dnswire.DS{KeyTag: 1, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.KeyTag = uint16(i)
		if err := c.UpdateDS("bench.com", []*dnswire.DS{ds}); err != nil {
			b.Fatal(err)
		}
	}
}
